package transport

// The executable flow-control & connection-lifecycle contract.
//
// Any Network implementation must pass this suite: a bounded write
// queue that never exceeds its cap, full-queue policies (shed with
// ErrQueueFull, block with ErrSendDeadline), slow peers that stall only
// their own destination, eviction-then-reconnect transparency, and
// per-sender FIFO delivery across reconnects. The faults are injected
// deterministically: InMem through its Hold/Cut switches, TCP through a
// raw frame-reading peer whose consumption (and very existence) the
// test controls. All tests are race-clean (the Makefile race target
// runs this package).

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"selfserv/internal/message"
)

// testFlow is the flow configuration the contract tests use: a tiny
// queue so bounds are reachable, and fast reconnect backoff.
func testFlow(queue int, policy QueuePolicy) FlowOptions {
	return FlowOptions{
		QueueLen:     queue,
		Policy:       policy,
		SendDeadline: 150 * time.Millisecond,
		BackoffBase:  2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		BackoffSeed:  7,
	}
}

// seqMsg builds a message whose Seq identifies it. pad inflates the
// payload so TCP kernel buffers saturate after a handful of frames.
func seqMsg(seq, pad int) *message.Message {
	m := &message.Message{Type: message.TypeNotify, From: "tester", To: "peer", Seq: seq}
	if pad > 0 {
		b := make([]byte, pad)
		for i := range b {
			b[i] = 'x'
		}
		m.Vars = map[string]string{"pad": string(b)}
	}
	return m
}

// stalledPeer is a destination that does NOT consume frames until
// Drain — the slow-peer injection, implementation-appropriate.
type stalledPeer interface {
	Addr() string
	// Drain resumes consumption, waits for want messages (plus a grace
	// period to catch stragglers), and returns them in arrival order.
	Drain(t *testing.T, want int) []*message.Message
}

// faultImpl adapts one Network implementation to the fault harness.
type faultImpl struct {
	name string
	// pad is the per-message padding needed to make "queue fills" a
	// small number of frames (TCP must saturate kernel buffers too).
	pad int
	// newNet builds the sender-side network under the given flow config.
	newNet func(flow FlowOptions) Network
	// newStalled creates a destination that is stalled from birth.
	newStalled func(t *testing.T, n Network) stalledPeer
}

func faultImpls() []faultImpl {
	impls := []faultImpl{
		{
			name: "inmem",
			pad:  0,
			newNet: func(flow FlowOptions) Network {
				return NewInMem(InMemOptions{Synchronous: true, Flow: flow})
			},
			newStalled: func(t *testing.T, n Network) stalledPeer {
				return newInmemStalled(t, n.(*InMem))
			},
		},
		{
			name: "tcp",
			pad:  256 << 10,
			newNet: func(flow FlowOptions) Network {
				return NewTCP(flow)
			},
			newStalled: func(t *testing.T, n Network) stalledPeer {
				return newRawPeer(t, "127.0.0.1:0")
			},
		},
	}
	// The whole suite runs AGAIN with cross-round merging enabled: every
	// flow-control and ordering guarantee must be invariant under the
	// writers batching frames (merged delivery ≡ sequential delivery, an
	// expired send's frame is never folded into an outgoing batch, the
	// accepted prefix survives drains in order).
	for _, impl := range impls[:len(impls):len(impls)] {
		impl := impl
		base := impl.newNet
		impl.name += "+merge"
		impl.newNet = func(flow FlowOptions) Network {
			flow.FlushDelay = 2 * time.Millisecond
			return base(flow)
		}
		impls = append(impls, impl)
	}
	return impls
}

// --- InMem stalled peer: Hold/Release ---

type inmemStalled struct {
	n    *InMem
	addr string
	mu   sync.Mutex
	got  []*message.Message
}

func newInmemStalled(t *testing.T, n *InMem) *inmemStalled {
	t.Helper()
	p := &inmemStalled{n: n, addr: "stalled-peer"}
	_, err := n.Listen(p.addr, func(_ context.Context, m *message.Message) {
		p.mu.Lock()
		p.got = append(p.got, m)
		p.mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	n.Hold(p.addr)
	return p
}

func (p *inmemStalled) Addr() string { return p.addr }

func (p *inmemStalled) Drain(t *testing.T, want int) []*message.Message {
	t.Helper()
	p.n.Release(p.addr) // drains synchronously
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.got) != want {
		t.Fatalf("drained %d messages, want %d", len(p.got), want)
	}
	return append([]*message.Message(nil), p.got...)
}

// --- TCP stalled peer: a raw listener that accepts but does not read
// until Drain, so frames pile up in kernel buffers and then in the
// sender's bounded queue ---

type rawPeer struct {
	t  *testing.T
	ln net.Listener

	mu       sync.Mutex
	conns    []net.Conn
	got      []*message.Message
	frames   [][]byte // raw payloads, one per wire frame, in arrival order
	draining bool
	closed   bool
}

func newRawPeer(t *testing.T, addr string) *rawPeer {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("raw listen: %v", err)
	}
	p := &rawPeer{t: t, ln: ln}
	t.Cleanup(p.close)
	go p.acceptLoop(ln)
	return p
}

func (p *rawPeer) acceptLoop(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		p.conns = append(p.conns, c)
		draining := p.draining
		p.mu.Unlock()
		if draining {
			go p.readFrames(c)
		}
	}
}

func (p *rawPeer) Addr() string { return p.ln.Addr().String() }

// readFrames decodes length-prefixed frames off one connection,
// appending their messages in wire order.
func (p *rawPeer) readFrames(c net.Conn) {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		payload := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(c, payload); err != nil {
			return
		}
		ms, err := message.UnmarshalBatch(payload)
		if err != nil {
			continue
		}
		p.mu.Lock()
		p.got = append(p.got, ms...)
		p.frames = append(p.frames, payload)
		p.mu.Unlock()
	}
}

func (p *rawPeer) Drain(t *testing.T, want int) []*message.Message {
	t.Helper()
	p.mu.Lock()
	p.draining = true
	conns := append([]net.Conn(nil), p.conns...)
	p.mu.Unlock()
	for _, c := range conns {
		go p.readFrames(c)
	}
	waitFor(t, func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return len(p.got) >= want
	}, fmt.Sprintf("%d drained messages", want))
	time.Sleep(50 * time.Millisecond) // catch any frame beyond want
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.got) != want {
		t.Fatalf("drained %d messages, want exactly %d", len(p.got), want)
	}
	return append([]*message.Message(nil), p.got...)
}

// cut severs the peer: the listener and every accepted connection die,
// as if the host vanished. restore (re-listen on the same port) brings
// it back.
func (p *rawPeer) cut() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (p *rawPeer) restore(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", p.Addr())
	if err != nil {
		t.Fatalf("re-listen %s: %v", p.Addr(), err)
	}
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	go p.acceptLoop(ln)
}

func (p *rawPeer) close() {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// assertSeqs fails unless the messages carry exactly want sequence
// numbers, in order.
func assertSeqs(t *testing.T, got []*message.Message, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d messages, want %d", len(got), len(want))
	}
	for i, m := range got {
		if m.Seq != want[i] {
			seqs := make([]int, len(got))
			for j, g := range got {
				seqs[j] = g.Seq
			}
			t.Fatalf("delivery order %v, want %v", seqs, want)
		}
	}
}

// TestContractSlowPeerFillAndDrain pins the bounded-queue core of the
// contract: a peer that stops consuming fills its queue to the cap and
// not a frame beyond it (shed policy: ErrQueueFull), the queue depth
// stat never exceeds the cap, and once the peer drains, every ACCEPTED
// frame arrives in acceptance order — nothing lost, nothing reordered,
// and the shed frames are gone for good.
func TestContractSlowPeerFillAndDrain(t *testing.T) {
	const queueLen = 4
	for _, impl := range faultImpls() {
		t.Run(impl.name, func(t *testing.T) {
			n := impl.newNet(testFlow(queueLen, QueueShed))
			defer n.Close()
			peer := impl.newStalled(t, n)
			ctx := context.Background()

			var accepted []int
			sawFull := false
			for i := 0; i < 64; i++ {
				err := n.Send(ctx, peer.Addr(), seqMsg(i, impl.pad))
				switch {
				case err == nil:
					accepted = append(accepted, i)
				case errors.Is(err, ErrQueueFull):
					sawFull = true
				default:
					t.Fatalf("send %d: %v", i, err)
				}
				if d := n.Stats().Nodes[peer.Addr()].QueueDepth; d > queueLen {
					t.Fatalf("queue depth %d exceeds cap %d", d, queueLen)
				}
				if sawFull {
					break
				}
			}
			if !sawFull {
				t.Fatal("queue never filled: no ErrQueueFull after 64 sends to a stalled peer")
			}
			st := n.Stats().Nodes[peer.Addr()]
			if st.SendBlocked == 0 {
				t.Fatalf("SendBlocked = 0 after a shed send; stats = %+v", st)
			}

			got := peer.Drain(t, len(accepted))
			assertSeqs(t, got, accepted)
			waitFor(t, func() bool { return n.Stats().Nodes[peer.Addr()].QueueDepth == 0 }, "queue drained to zero")
		})
	}
}

// TestContractSendDeadlineExpiry pins the block policy: a send finding
// the queue full blocks for the send deadline, fails with
// ErrSendDeadline, and its frame is NOT delivered — while every send
// accepted before it arrives in order. Deadline expiry cannot reorder
// or truncate the accepted prefix.
func TestContractSendDeadlineExpiry(t *testing.T) {
	const queueLen = 3
	for _, impl := range faultImpls() {
		t.Run(impl.name, func(t *testing.T) {
			n := impl.newNet(testFlow(queueLen, QueueBlock))
			defer n.Close()
			peer := impl.newStalled(t, n)
			ctx := context.Background()

			var accepted []int
			var expired int = -1
			start := time.Time{}
			for i := 0; i < 64; i++ {
				begin := time.Now()
				err := n.Send(ctx, peer.Addr(), seqMsg(i, impl.pad))
				if err == nil {
					accepted = append(accepted, i)
					continue
				}
				if !errors.Is(err, ErrSendDeadline) {
					t.Fatalf("send %d: %v, want ErrSendDeadline", i, err)
				}
				expired, start = i, begin
				break
			}
			if expired < 0 {
				t.Fatal("no send expired after 64 sends to a stalled peer")
			}
			if waited := time.Since(start); waited < 100*time.Millisecond {
				t.Fatalf("expired send waited only %v, want ~the 150ms send deadline", waited)
			}
			if st := n.Stats().Nodes[peer.Addr()]; st.SendBlocked == 0 {
				t.Fatalf("SendBlocked = 0 after a blocked send; stats = %+v", st)
			}

			// The drain sees exactly the accepted prefix; the expired
			// frame never surfaces, before or after.
			got := peer.Drain(t, len(accepted))
			assertSeqs(t, got, accepted)
		})
	}
}

// TestContractSlowPeerIsolation pins that backpressure is per
// destination: with one peer's queue full to the point of shedding,
// traffic to a second, healthy peer flows untouched.
func TestContractSlowPeerIsolation(t *testing.T) {
	const queueLen = 2
	for _, impl := range faultImpls() {
		t.Run(impl.name, func(t *testing.T) {
			n := impl.newNet(testFlow(queueLen, QueueShed))
			defer n.Close()
			slow := impl.newStalled(t, n)

			var mu sync.Mutex
			var live []*message.Message
			liveAddr := ""
			switch net := n.(type) {
			case *InMem:
				ep, err := net.Listen("live-peer", func(_ context.Context, m *message.Message) {
					mu.Lock()
					live = append(live, m)
					mu.Unlock()
				})
				if err != nil {
					t.Fatal(err)
				}
				liveAddr = ep.Addr()
			default:
				ep, err := n.Listen("127.0.0.1:0", func(_ context.Context, m *message.Message) {
					mu.Lock()
					live = append(live, m)
					mu.Unlock()
				})
				if err != nil {
					t.Fatal(err)
				}
				liveAddr = ep.Addr()
			}

			ctx := context.Background()
			// Fill the slow peer until it sheds WITH its queue at the cap
			// (an early shed can be a transient burst the writer then
			// flushes into still-roomy kernel buffers).
			wedged := false
			for i := 0; i < 300 && !wedged; i++ {
				err := n.Send(ctx, slow.Addr(), seqMsg(i, impl.pad))
				if err != nil && !errors.Is(err, ErrQueueFull) {
					t.Fatalf("send %d: %v", i, err)
				}
				wedged = errors.Is(err, ErrQueueFull) &&
					n.Stats().Nodes[slow.Addr()].QueueDepth == queueLen
			}
			if !wedged {
				t.Fatal("slow peer never wedged at its queue cap")
			}

			// The healthy destination is unaffected: its sends succeed
			// (modulo transient own-queue bursts under the tiny test cap,
			// which a shed-policy client retries) and all deliver. If the
			// slow peer's backpressure leaked across destinations, these
			// sends would shed forever.
			const liveN = 10
			for i := 0; i < liveN; i++ {
				for {
					err := n.Send(ctx, liveAddr, seqMsg(100+i, 0))
					if err == nil {
						break
					}
					if !errors.Is(err, ErrQueueFull) {
						t.Fatalf("send to live peer: %v", err)
					}
					time.Sleep(time.Millisecond)
				}
			}
			waitFor(t, func() bool {
				mu.Lock()
				defer mu.Unlock()
				return len(live) == liveN
			}, "deliveries to the live peer while the slow peer is stalled")

			// And the slow peer's queue still respects its bound. Only
			// InMem pins the exact depth: real kernel buffers keep
			// absorbing frames as they autotune, so TCP's queue may have
			// partially drained into them — the CAP is the contract.
			d := n.Stats().Nodes[slow.Addr()].QueueDepth
			if d > queueLen {
				t.Fatalf("slow peer queue depth = %d exceeds cap %d", d, queueLen)
			}
			if impl.name == "inmem" && d != queueLen {
				t.Fatalf("slow peer queue depth = %d, want the cap %d", d, queueLen)
			}
		})
	}
}

// TestInMemNoReorderAcrossReconnect pins per-sender FIFO across a link
// outage, deterministically: frames accepted before, during, and after
// a Cut arrive exactly once, in acceptance order, after Restore — a
// disconnect delays delivery but never reorders or duplicates it.
func TestInMemNoReorderAcrossReconnect(t *testing.T) {
	n := NewInMem(InMemOptions{Synchronous: true, Flow: testFlow(64, QueueBlock)})
	defer n.Close()
	var got []*message.Message
	ep, err := n.Listen("peer", func(_ context.Context, m *message.Message) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want := make([]int, 0, 30)
	for i := 0; i < 10; i++ { // before the outage
		if err := n.Send(ctx, ep.Addr(), seqMsg(i, 0)); err != nil {
			t.Fatal(err)
		}
		want = append(want, i)
	}
	n.Cut(ep.Addr())
	for i := 10; i < 20; i++ { // during: accepted into the queue
		if err := n.Send(ctx, ep.Addr(), seqMsg(i, 0)); err != nil {
			t.Fatal(err)
		}
		want = append(want, i)
	}
	if len(got) != 10 {
		t.Fatalf("deliveries during the outage: got %d, want 10", len(got))
	}
	n.Restore(ep.Addr())
	for i := 20; i < 30; i++ { // after
		if err := n.Send(ctx, ep.Addr(), seqMsg(i, 0)); err != nil {
			t.Fatal(err)
		}
		want = append(want, i)
	}
	assertSeqs(t, got, want)
	if r := n.Stats().Nodes[ep.Addr()].Reconnects; r != 1 {
		t.Fatalf("Reconnects = %d, want 1", r)
	}
}

// TestTCPNoReorderAcrossReconnect is the real-socket version: the peer
// dies mid-stream and comes back on the same port; the sender's writer
// re-dials with backoff and resumes from the first unwritten frame.
// Frames already handed to the dead kernel socket may be lost, but what
// arrives is strictly increasing (per-sender FIFO, no duplicates), and
// everything accepted after the peer returned arrives.
func TestTCPNoReorderAcrossReconnect(t *testing.T) {
	n := NewTCP(testFlow(64, QueueBlock))
	defer n.Close()
	peer := newRawPeer(t, "127.0.0.1:0")
	peer.mu.Lock()
	peer.draining = true // consume from the start
	peer.mu.Unlock()

	ctx := context.Background()
	const total = 60
	for i := 0; i < total; i++ {
		if i == 20 {
			peer.cut()
		}
		if i == 40 {
			peer.restore(t)
		}
		if err := n.Send(ctx, peer.Addr(), seqMsg(i, 0)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	waitFor(t, func() bool {
		peer.mu.Lock()
		defer peer.mu.Unlock()
		return len(peer.got) > 0 && peer.got[len(peer.got)-1].Seq == total-1
	}, "the final frame after reconnect")

	peer.mu.Lock()
	got := append([]*message.Message(nil), peer.got...)
	peer.mu.Unlock()
	seen := map[int]bool{}
	prev := -1
	for _, m := range got {
		if m.Seq <= prev {
			t.Fatalf("reordered or duplicated delivery: %d after %d", m.Seq, prev)
		}
		prev = m.Seq
		seen[m.Seq] = true
	}
	// Everything accepted after the peer was back must have arrived.
	for i := 40; i < total; i++ {
		if !seen[i] {
			t.Fatalf("frame %d (sent after restore) never arrived", i)
		}
	}
	if r := n.Stats().Nodes[peer.Addr()].Reconnects; r < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", r)
	}
}

// TestTCPIdleEvictionThenReconnect pins the lifecycle half of the
// contract: an idle cached connection ages out of the cache, and the
// next send transparently re-dials — same API, one more Reconnect in
// the stats, message delivered.
func TestTCPIdleEvictionThenReconnect(t *testing.T) {
	flow := testFlow(8, QueueBlock)
	flow.IdleTimeout = 40 * time.Millisecond
	n := NewTCP(flow)
	defer n.Close()

	recv := NewTCP()
	defer recv.Close()
	var mu sync.Mutex
	var got []*message.Message
	ep, err := recv.Listen("127.0.0.1:0", func(_ context.Context, m *message.Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if err := n.Send(ctx, ep.Addr(), seqMsg(0, 0)); err != nil {
		t.Fatal(err)
	}
	if c := n.ConnCount(); c != 1 {
		t.Fatalf("ConnCount = %d after first send, want 1", c)
	}
	waitFor(t, func() bool { return n.ConnCount() == 0 }, "idle eviction")

	// Transparent reconnect: the same call works, counted in stats.
	if err := n.Send(ctx, ep.Addr(), seqMsg(1, 0)); err != nil {
		t.Fatalf("send after eviction: %v", err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	}, "delivery after eviction")
	mu.Lock()
	assertSeqs(t, got, []int{0, 1})
	mu.Unlock()
	if r := n.Stats().Nodes[ep.Addr()].Reconnects; r != 1 {
		t.Fatalf("Reconnects = %d, want 1", r)
	}
}

// TestTCPMaxConnsEviction pins the cache cap: with MaxConns=2, a third
// destination evicts the least-recently-used idle connection, and a
// later send to the evicted destination transparently reconnects.
func TestTCPMaxConnsEviction(t *testing.T) {
	flow := testFlow(8, QueueBlock)
	flow.MaxConns = 2
	n := NewTCP(flow)
	defer n.Close()

	recv := NewTCP()
	defer recv.Close()
	var mu sync.Mutex
	counts := map[string]int{}
	addrs := make([]string, 3)
	for i := range addrs {
		ep, err := recv.Listen("127.0.0.1:0", func(_ context.Context, m *message.Message) {
			mu.Lock()
			counts[m.To]++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ep.Addr()
	}

	ctx := context.Background()
	send := func(to string, seq int) {
		t.Helper()
		m := seqMsg(seq, 0)
		m.To = to
		if err := n.Send(ctx, to, m); err != nil {
			t.Fatalf("send to %s: %v", to, err)
		}
		waitFor(t, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return counts[to] >= 1
		}, "delivery to "+to)
		// Wait until the frame has left the queue so the conn is
		// evictable (accepted frames are never dropped by eviction).
		waitFor(t, func() bool { return n.Stats().Nodes[to].QueueDepth == 0 }, "queue empty")
	}

	send(addrs[0], 0)
	send(addrs[1], 1)
	if c := n.ConnCount(); c != 2 {
		t.Fatalf("ConnCount = %d, want 2", c)
	}
	send(addrs[2], 2) // evicts the LRU (addrs[0])
	if c := n.ConnCount(); c != 2 {
		t.Fatalf("ConnCount = %d after exceeding the cap, want 2", c)
	}
	send(addrs[0], 3) // transparent reconnect
	if r := n.Stats().Nodes[addrs[0]].Reconnects; r != 1 {
		t.Fatalf("Reconnects to the evicted destination = %d, want 1", r)
	}
}

// TestInMemBlockedSendCompletesOnDrain pins the happy side of the block
// policy: a sender blocked on a full queue is released (with a nil
// error) when the peer drains, and its message lands AFTER everything
// queued before it — blocking preserves acceptance order.
func TestInMemBlockedSendCompletesOnDrain(t *testing.T) {
	n := NewInMem(InMemOptions{Synchronous: true, Flow: FlowOptions{
		QueueLen: 2, Policy: QueueBlock, SendDeadline: 5 * time.Second,
	}})
	defer n.Close()
	var mu sync.Mutex
	var got []*message.Message
	ep, err := n.Listen("peer", func(_ context.Context, m *message.Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n.Hold(ep.Addr())
	for i := 0; i < 2; i++ {
		if err := n.Send(ctx, ep.Addr(), seqMsg(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- n.Send(ctx, ep.Addr(), seqMsg(2, 0)) }()
	waitFor(t, func() bool { return n.Stats().Nodes[ep.Addr()].SendBlocked >= 1 }, "the third send to block")
	n.Release(ep.Addr())
	if err := <-blocked; err != nil {
		t.Fatalf("blocked send after drain: %v", err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 3
	}, "all three deliveries")
	mu.Lock()
	assertSeqs(t, got, []int{0, 1, 2})
	mu.Unlock()
}

// TestInMemCloseWakesBlockedSender pins shutdown behaviour: a sender
// blocked on a stalled peer's full queue is woken promptly by Close
// with ErrClosed — it does not sit out its whole send deadline.
func TestInMemCloseWakesBlockedSender(t *testing.T) {
	n := NewInMem(InMemOptions{Synchronous: true, Flow: FlowOptions{
		QueueLen: 1, Policy: QueueBlock, SendDeadline: 30 * time.Second,
	}})
	ep, err := n.Listen("peer", func(context.Context, *message.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n.Hold(ep.Addr())
	if err := n.Send(ctx, ep.Addr(), seqMsg(0, 0)); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- n.Send(ctx, ep.Addr(), seqMsg(1, 0)) }()
	waitFor(t, func() bool { return n.Stats().Nodes[ep.Addr()].SendBlocked >= 1 }, "the send to block")
	n.Close()
	select {
	case err := <-blocked:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked send after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the blocked sender")
	}
}

// TestInMemQueuedFramesNotCountedUntilDelivered pins the receiver-side
// accounting: frames queued behind a Hold count as received only when
// the drain actually hands them to the handler — a frame dropped at
// Close never inflates MsgsIn (matching TCP's read-side accounting).
func TestInMemQueuedFramesNotCountedUntilDelivered(t *testing.T) {
	n := NewInMem(InMemOptions{Synchronous: true, Flow: testFlow(8, QueueShed)})
	defer n.Close()
	ep, err := n.Listen("peer", func(context.Context, *message.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n.Hold(ep.Addr())
	for i := 0; i < 3; i++ {
		if err := n.Send(ctx, ep.Addr(), seqMsg(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if in := n.Stats().Nodes[ep.Addr()].MsgsIn; in != 0 {
		t.Fatalf("MsgsIn = %d while everything is still queued, want 0", in)
	}
	n.Release(ep.Addr())
	if in := n.Stats().Nodes[ep.Addr()].MsgsIn; in != 3 {
		t.Fatalf("MsgsIn = %d after the drain, want 3", in)
	}
}

// TestInMemPerSenderFIFOThroughLanes pins the receive-lane half of the
// delivery contract on the in-memory network in its production shape
// (asynchronous delivery): frames from one sender arrive in send order
// ACROSS frames — not just within a batch — because every sender hashes
// onto one bounded lane that delivers sequentially. Two interleaved
// senders keep their own orders independently, and a Cut/Restore outage
// in the middle must not reorder either stream: drained frames route
// through the same lanes, behind anything already queued there.
func TestInMemPerSenderFIFOThroughLanes(t *testing.T) {
	n := NewInMem(InMemOptions{Flow: testFlow(64, QueueBlock)}) // async: lanes active
	defer n.Close()
	var mu sync.Mutex
	var got []*message.Message
	ep, err := n.Listen("peer", func(_ context.Context, m *message.Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if lanes := n.Stats().Nodes[ep.Addr()].RecvLanes; lanes != DefaultRecvLanes {
		t.Fatalf("RecvLanes = %d, want %d", lanes, DefaultRecvLanes)
	}

	alice := n.Open("alice")
	bob := n.Open("bob")
	ctx := context.Background()
	const per = 30
	send := func(s Sender, base, lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			m := seqMsg(base+i, 0)
			m.From = s.From()
			if err := s.Send(ctx, ep.Addr(), m); err != nil {
				t.Fatalf("%s send %d: %v", s.From(), i, err)
			}
		}
	}
	// Interleaved live traffic, then an outage with traffic queued behind
	// it, then live again.
	send(alice, 0, 0, 10)
	send(bob, 1000, 0, 10)
	n.Cut(ep.Addr())
	send(alice, 0, 10, 20)
	send(bob, 1000, 10, 20)
	n.Restore(ep.Addr())
	send(alice, 0, 20, per)
	send(bob, 1000, 20, per)

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2*per
	}, "all deliveries")
	mu.Lock()
	defer mu.Unlock()
	var aliceSeqs, bobSeqs []int
	for _, m := range got {
		if m.Seq >= 1000 {
			bobSeqs = append(bobSeqs, m.Seq)
		} else {
			aliceSeqs = append(aliceSeqs, m.Seq)
		}
	}
	for i, s := range aliceSeqs {
		if s != i {
			t.Fatalf("alice's stream reordered: %v", aliceSeqs)
		}
	}
	for i, s := range bobSeqs {
		if s != 1000+i {
			t.Fatalf("bob's stream reordered: %v", bobSeqs)
		}
	}
	if r := n.Stats().Nodes[ep.Addr()].Reconnects; r != 1 {
		t.Fatalf("Reconnects = %d, want 1", r)
	}
	waitFor(t, func() bool { return n.Stats().Nodes[ep.Addr()].RecvQueueDepth == 0 }, "receive lanes drained")
}

// TestTCPPerSenderFIFOThroughLanes is the real-socket twin: frames
// stream through a laned tcpEndpoint (not a raw reader), the receiver
// dies mid-stream and comes back on the same port (sender reconnects,
// fresh endpoint, fresh lanes), and what arrives is strictly increasing
// with everything sent after the restart present — the receive lanes
// deliver per-sender FIFO across frames, connections, and reconnects.
// Frames written into the dying socket may be lost; loss is allowed,
// reordering is not.
func TestTCPPerSenderFIFOThroughLanes(t *testing.T) {
	n := NewTCP(testFlow(64, QueueBlock))
	defer n.Close()
	recv := NewTCP()
	defer recv.Close()

	var mu sync.Mutex
	var got []*message.Message
	handler := func(_ context.Context, m *message.Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}
	ep, err := recv.Listen("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := ep.Addr()
	if lanes := recv.Stats().Nodes[addr].RecvLanes; lanes != DefaultRecvLanes {
		t.Fatalf("RecvLanes = %d, want %d", lanes, DefaultRecvLanes)
	}

	ctx := context.Background()
	const total = 60
	for i := 0; i < total; i++ {
		if i == 20 {
			ep.Close() // the receiver dies...
		}
		if i == 40 {
			ep, err = recv.Listen(addr, handler) // ...and returns on the same port
			if err != nil {
				t.Fatalf("re-listen: %v", err)
			}
		}
		if err := n.Send(ctx, addr, seqMsg(i, 0)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) > 0 && got[len(got)-1].Seq == total-1
	}, "the final frame after the receiver restart")

	mu.Lock()
	defer mu.Unlock()
	prev := -1
	seen := map[int]bool{}
	for _, m := range got {
		if m.Seq <= prev {
			t.Fatalf("reordered or duplicated delivery: %d after %d", m.Seq, prev)
		}
		prev = m.Seq
		seen[m.Seq] = true
	}
	for i := 40; i < total; i++ {
		if !seen[i] {
			t.Fatalf("frame %d (sent after the restart) never arrived", i)
		}
	}
}

// TestInMemBatchedEqualsSequentialUnderFaults pins that fault injection
// composes with the batching determinism contract: under one seed, with
// the destination stalled and restored mid-traffic, a batched sender
// loses exactly the messages the equivalent sequential sender loses,
// and the survivors arrive in the same order.
func TestInMemBatchedEqualsSequentialUnderFaults(t *testing.T) {
	run := func(batched bool) []string {
		n := NewInMem(InMemOptions{Synchronous: true, DropRate: 0.3, Seed: 99,
			Flow: testFlow(32, QueueBlock)})
		defer n.Close()
		var got []string
		ep, err := n.Listen("peer", func(_ context.Context, m *message.Message) {
			got = append(got, m.Vars["v"])
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		mk := func(i int) *message.Message {
			return &message.Message{Type: message.TypeNotify, Vars: map[string]string{"v": strconv.Itoa(i)}}
		}
		// Wave 1 delivered live, wave 2 queued behind a Cut and drained
		// by Restore, wave 3 live again.
		send := func(lo, hi int) {
			if batched {
				ms := make([]*message.Message, 0, hi-lo)
				for i := lo; i < hi; i++ {
					ms = append(ms, mk(i))
				}
				if err := n.SendBatch(ctx, ep.Addr(), ms); err != nil {
					t.Fatal(err)
				}
				return
			}
			for i := lo; i < hi; i++ {
				if err := n.Send(ctx, ep.Addr(), mk(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		send(0, 10)
		n.Cut(ep.Addr())
		send(10, 20)
		n.Restore(ep.Addr())
		send(20, 30)
		return got
	}

	seq := run(false)
	bat := run(true)
	if len(seq) != len(bat) {
		t.Fatalf("sequential delivered %d, batched %d — drop draws diverged under faults", len(seq), len(bat))
	}
	for i := range seq {
		if seq[i] != bat[i] {
			t.Fatalf("delivery %d: sequential %q, batched %q", i, seq[i], bat[i])
		}
	}
	if len(seq) == 30 || len(seq) == 0 {
		t.Fatalf("want a partial loss under DropRate=0.3, delivered %d/30", len(seq))
	}
}
