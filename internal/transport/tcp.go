package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"selfserv/internal/message"
)

// maxFrame bounds a single wire frame; SELF-SERV control messages are
// small (variable bags), so even a generous batch fits in 16 MiB, and
// the bound protects listeners from corrupt length prefixes.
const maxFrame = 16 << 20

// TCP is a Network transmitting length-prefixed frames over TCP
// connections, the Go equivalent of the paper's "XML documents exchanged
// through Java sockets". A frame's payload is either one XML document
// (legacy encoding, still what Send emits) or a count-prefixed batch
// (message.MarshalBatch); the read side decodes both. Outbound
// connections are cached per destination and shared by all Senders.
type TCP struct {
	stats *statsBook

	mu        sync.Mutex
	listeners map[string]*tcpEndpoint
	conns     map[string]*tcpConn
	closed    bool

	// DialTimeout bounds connection establishment; defaults to 5s.
	DialTimeout time.Duration
}

// NewTCP returns an empty TCP network.
func NewTCP() *TCP {
	return &TCP{
		stats:       newStatsBook(),
		listeners:   map[string]*tcpEndpoint{},
		conns:       map[string]*tcpConn{},
		DialTimeout: 5 * time.Second,
	}
}

// tcpConn pairs a cached connection with a write mutex so concurrent
// frames to the same destination never interleave, while sends to
// different destinations proceed in parallel.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// MintAddr implements Network: TCP listen addresses are loopback
// ephemeral binds; the logical hint has no wire meaning.
func (t *TCP) MintAddr(string) string { return "127.0.0.1:0" }

// Listen implements Network. addr is "host:port"; "127.0.0.1:0" binds an
// ephemeral port, reported by the endpoint's Addr.
func (t *TCP) Listen(addr string, h Handler) (Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", addr)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &tcpEndpoint{net: t, ln: ln, handler: h, accepted: map[net.Conn]struct{}{}}
	t.mu.Lock()
	t.listeners[ln.Addr().String()] = ep
	t.mu.Unlock()
	go ep.acceptLoop()
	return ep, nil
}

// Open implements Opener. The handle pins the sender's stats counters;
// connections stay cached per destination on the network and are shared
// across handles.
func (t *TCP) Open(from string) Sender {
	return &tcpSender{net: t, from: from, out: t.stats.node(from)}
}

// tcpSender is the TCP Sender handle.
type tcpSender struct {
	net  *TCP
	from string
	out  *nodeCounters
}

func (s *tcpSender) From() string { return s.from }

func (s *tcpSender) Send(ctx context.Context, to string, m *message.Message) error {
	return s.net.sendOne(ctx, s.out, to, m)
}

func (s *tcpSender) SendBatch(ctx context.Context, to string, ms []*message.Message) error {
	return s.net.sendBatch(ctx, s.out, to, ms)
}

// Send implements Network (unattributed batch of one).
func (t *TCP) Send(ctx context.Context, to string, m *message.Message) error {
	return t.sendOne(ctx, nil, to, m)
}

// SendBatch implements Network (unattributed).
func (t *TCP) SendBatch(ctx context.Context, to string, ms []*message.Message) error {
	return t.sendBatch(ctx, nil, to, ms)
}

// sendOne is the batch of one without the slice detour (legacy
// single-document payload; see docs/transport.md).
func (t *TCP) sendOne(ctx context.Context, out *nodeCounters, to string, m *message.Message) error {
	data, err := encodeOne(m)
	if err != nil {
		return err
	}
	return t.sendFrame(ctx, out, to, data, 1)
}

// sendBatch frames ms as one wire frame.
func (t *TCP) sendBatch(ctx context.Context, out *nodeCounters, to string, ms []*message.Message) error {
	if len(ms) == 0 {
		return nil
	}
	data, err := encodeBatch(ms)
	if err != nil {
		return err
	}
	return t.sendFrame(ctx, out, to, data, len(ms))
}

// sendFrame writes one length-prefixed frame carrying msgs messages with
// one syscall. The first send to a destination dials it; the connection
// is cached and re-dialed once if it has gone stale.
func (t *TCP) sendFrame(ctx context.Context, out *nodeCounters, to string, data []byte, msgs int) error {
	frame := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(frame, uint32(len(data)))
	copy(frame[4:], data)

	if err := t.write(ctx, to, frame); err != nil {
		// Stale cached connection: drop it and retry once on a fresh one.
		t.dropConn(to)
		if err = t.write(ctx, to, frame); err != nil {
			return err
		}
	}
	t.stats.recordOut(out, msgs, len(frame))
	return nil
}

func (t *TCP) write(ctx context.Context, to string, frame []byte) error {
	tc, err := t.conn(ctx, to)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if dl, ok := ctx.Deadline(); ok {
		_ = tc.c.SetWriteDeadline(dl)
	} else {
		_ = tc.c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	}
	if _, err := tc.c.Write(frame); err != nil {
		return fmt.Errorf("transport: write to %s: %w", to, err)
	}
	return nil
}

func (t *TCP) conn(ctx context.Context, to string) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	d := net.Dialer{Timeout: t.DialTimeout}
	c, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrUnknownAddress, to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		c.Close()
		return existing, nil
	}
	tc := &tcpConn{c: c}
	t.conns[to] = tc
	return tc, nil
}

func (t *TCP) dropConn(to string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tc, ok := t.conns[to]; ok {
		tc.c.Close()
		delete(t.conns, to)
	}
}

// Stats implements Network.
func (t *TCP) Stats() Stats { return t.stats.snapshot() }

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	t.closed = true
	eps := make([]*tcpEndpoint, 0, len(t.listeners))
	for _, ep := range t.listeners {
		eps = append(eps, ep)
	}
	t.listeners = map[string]*tcpEndpoint{}
	conns := t.conns
	t.conns = map[string]*tcpConn{}
	t.mu.Unlock()
	for _, tc := range conns {
		tc.c.Close()
	}
	for _, ep := range eps {
		ep.closeListener()
	}
	return nil
}

type tcpEndpoint struct {
	net     *TCP
	ln      net.Listener
	handler Handler

	mu       sync.Mutex
	closed   bool
	accepted map[net.Conn]struct{}
	wg       sync.WaitGroup
}

func (e *tcpEndpoint) Addr() string { return e.ln.Addr().String() }

func (e *tcpEndpoint) Close() error {
	e.net.mu.Lock()
	delete(e.net.listeners, e.Addr())
	e.net.mu.Unlock()
	e.closeListener()
	return nil
}

func (e *tcpEndpoint) closeListener() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.accepted))
	for c := range e.accepted {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	e.ln.Close()
	// Unblock readLoops waiting on peers that keep their cached outbound
	// connections open.
	for _, c := range conns {
		c.Close()
	}
	e.wg.Wait()
}

func (e *tcpEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() {
				e.mu.Lock()
				delete(e.accepted, conn)
				e.mu.Unlock()
				conn.Close()
			}()
			e.readLoop(conn)
		}()
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return // corrupt stream; drop the connection
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		ms, err := message.UnmarshalBatch(payload)
		if err != nil {
			continue // skip malformed frame, keep the connection
		}
		e.net.stats.recordIn(e.Addr(), len(ms), len(payload)+4)
		// One goroutine per frame: the messages of a batch reach the
		// handler sequentially, in batch order (per-destination FIFO
		// within a frame); distinct frames deliver concurrently.
		go func() {
			for _, m := range ms {
				e.handler(context.Background(), m)
			}
		}()
	}
}
