package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"selfserv/internal/message"
)

// maxFrame bounds a single wire frame; SELF-SERV control messages are
// small (variable bags), so even a generous batch fits in 16 MiB, and
// the bound protects listeners from corrupt length prefixes.
const maxFrame = 16 << 20

// tcpWriteTimeout bounds one socket write; a peer that stops reading for
// longer counts as failed and the connection is re-established.
const tcpWriteTimeout = 10 * time.Second

// errRetired is the internal signal that a cached connection was evicted
// between lookup and enqueue; the send path retries with a fresh one.
var errRetired = errors.New("transport: connection retired")

// TCP is a Network transmitting length-prefixed frames over TCP
// connections, the Go equivalent of the paper's "XML documents exchanged
// through Java sockets". A frame's payload is either one XML document
// (legacy encoding, still what Send emits) or a count-prefixed batch
// (message.MarshalBatch); the read side decodes both.
//
// Outbound connections are cached per destination and shared by all
// Senders. Each cached connection owns a BOUNDED write queue drained by
// one writer goroutine: a send enqueues a frame (blocking or shedding
// per FlowOptions when the queue is full — so a slow peer stalls only
// its own connection, never sends to other destinations) and the writer
// re-establishes failed connections with jittered exponential backoff,
// re-sending the failed frame first so per-sender FIFO order survives
// reconnects. Idle connections age out (FlowOptions.IdleTimeout) and the
// cache is capped (FlowOptions.MaxConns). With FlowOptions.FlushDelay
// set, each writer additionally merges everything queued for its
// destination into one wire frame per write — cross-round batching (see
// writeLoop and docs/transport.md).
type TCP struct {
	stats    *statsBook
	flow     FlowOptions
	bo       *backoff
	breakers *sendBreakers // nil unless flow.Breaker is set

	mu        sync.Mutex
	listeners map[string]*tcpEndpoint
	conns     map[string]*tcpConn
	ever      map[string]bool // destinations connected at least once
	closed    bool
	stop      chan struct{} // closed by Close; stops janitor and writer backoffs
	writerWG  sync.WaitGroup

	// DialTimeout bounds connection establishment; defaults to 5s.
	DialTimeout time.Duration
}

// NewTCP returns an empty TCP network. An optional FlowOptions tunes
// flow control and connection lifecycle; omitted, the documented
// defaults apply (256-frame queues, block policy, 5s send deadline, no
// idle eviction, no conn cap).
func NewTCP(flow ...FlowOptions) *TCP {
	var fo FlowOptions
	if len(flow) > 0 {
		fo = flow[0]
	}
	fo = fo.withDefaults()
	stats := newStatsBook()
	t := &TCP{
		stats:       stats,
		breakers:    newSendBreakers(fo, stats),
		flow:        fo,
		bo:          newBackoff(fo),
		listeners:   map[string]*tcpEndpoint{},
		conns:       map[string]*tcpConn{},
		ever:        map[string]bool{},
		stop:        make(chan struct{}),
		DialTimeout: 5 * time.Second,
	}
	if fo.IdleTimeout > 0 {
		go t.janitor()
	}
	return t
}

// tcpConn is one cached outbound connection: a bounded frame queue, the
// writer goroutine draining it, and the current socket. The lifecycle
// invariant: a connection is evicted (retired) only when no sender is
// inside enqueue AND no frame is queued or being written, so eviction
// never drops an accepted frame.
type tcpConn struct {
	net  *TCP
	addr string
	dst  *nodeCounters // destination-keyed flow counters

	queue chan tcpFrame
	// space is the admission semaphore bounding accepted-but-unwritten
	// frames at QueueLen: a send takes a token before enqueueing and the
	// writer returns the tokens only AFTER the frames hit the wire — so a
	// cross-round batch in flight still counts against the bound (the
	// queue channel alone would free its slots the moment the batcher
	// drains them).
	space chan struct{}
	stop  chan struct{} // closed on retire; writer exits, waiters bail

	stateMu sync.Mutex
	retired bool
	pending int   // senders currently inside enqueue
	depth   int64 // frames accepted but not yet written (mirrors dst.queueDepth)
	lastUse time.Time

	sockMu sync.Mutex
	c      net.Conn // nil while disconnected
	dialed bool     // a socket existed before (re-dial counts as reconnect)
}

type tcpFrame struct {
	data []byte
	msgs int
}

// MintAddr implements Network: TCP listen addresses are loopback
// ephemeral binds; the logical hint has no wire meaning.
func (t *TCP) MintAddr(string) string { return "127.0.0.1:0" }

// Listen implements Network. addr is "host:port"; "127.0.0.1:0" binds an
// ephemeral port, reported by the endpoint's Addr.
func (t *TCP) Listen(addr string, h Handler) (Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", addr)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &tcpEndpoint{
		net:      t,
		ln:       ln,
		handler:  h,
		accepted: map[net.Conn]struct{}{},
		rc:       t.stats.node(ln.Addr().String()),
		lanes:    make([]chan []*message.Message, t.flow.RecvLanes),
		stopc:    make(chan struct{}),
	}
	ep.rc.recvLanes.Store(int64(len(ep.lanes)))
	for i := range ep.lanes {
		ep.lanes[i] = make(chan []*message.Message, t.flow.RecvQueueLen)
		ep.laneWG.Add(1)
		go ep.laneLoop(ep.lanes[i])
	}
	t.mu.Lock()
	t.listeners[ln.Addr().String()] = ep
	t.mu.Unlock()
	go ep.acceptLoop()
	return ep, nil
}

// Open implements Opener. The handle pins the sender's stats counters;
// connections stay cached per destination on the network and are shared
// across handles.
func (t *TCP) Open(from string) Sender {
	return &tcpSender{net: t, from: from, out: t.stats.node(from)}
}

// tcpSender is the TCP Sender handle.
type tcpSender struct {
	net  *TCP
	from string
	out  *nodeCounters
}

func (s *tcpSender) From() string { return s.from }

func (s *tcpSender) Send(ctx context.Context, to string, m *message.Message) error {
	return s.net.sendOne(ctx, s.out, to, m)
}

func (s *tcpSender) SendBatch(ctx context.Context, to string, ms []*message.Message) error {
	return s.net.sendBatch(ctx, s.out, to, ms)
}

// Send implements Network (unattributed batch of one).
func (t *TCP) Send(ctx context.Context, to string, m *message.Message) error {
	return t.sendOne(ctx, nil, to, m)
}

// SendBatch implements Network (unattributed).
func (t *TCP) SendBatch(ctx context.Context, to string, ms []*message.Message) error {
	return t.sendBatch(ctx, nil, to, ms)
}

// sendOne is the batch of one without the slice detour (legacy
// single-document payload; see docs/transport.md).
func (t *TCP) sendOne(ctx context.Context, out *nodeCounters, to string, m *message.Message) error {
	data, err := encodeOne(m)
	if err != nil {
		return err
	}
	return t.sendFrame(ctx, out, to, data, 1)
}

// sendBatch frames ms as one wire frame.
func (t *TCP) sendBatch(ctx context.Context, out *nodeCounters, to string, ms []*message.Message) error {
	if len(ms) == 0 {
		return nil
	}
	data, err := encodeBatch(ms)
	if err != nil {
		return err
	}
	return t.sendFrame(ctx, out, to, data, len(ms))
}

// sendFrame accepts one length-prefixed frame carrying msgs messages
// into the destination's bounded write queue. A nil return means the
// frame is accepted: the writer goroutine will deliver it (re-dialing
// with backoff as needed), in acceptance order. The error cases are the
// flow-control contract: ErrQueueFull (shed policy), ErrSendDeadline
// (block policy timed out), ErrUnknownAddress (first dial failed),
// ErrClosed.
// With flow.Breaker set, the destination's breaker gates the frame
// BEFORE connection lookup and queue admission — an open breaker refuses
// instantly with circuit.ErrOpen, costing no dial, no queue slot, and no
// deadline wait — and is fed the acceptance/refusal outcome.
func (t *TCP) sendFrame(ctx context.Context, out *nodeCounters, to string, data []byte, msgs int) error {
	if err := t.breakers.allow(to); err != nil {
		return err
	}
	err := t.sendFrameAdmitted(ctx, out, to, data, msgs)
	t.breakers.record(to, err)
	return err
}

// sendFrameAdmitted is sendFrame past the breaker gate.
func (t *TCP) sendFrameAdmitted(ctx context.Context, out *nodeCounters, to string, data []byte, msgs int) error {
	frame := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(frame, uint32(len(data)))
	copy(frame[4:], data)

	for {
		tc, err := t.conn(ctx, to)
		if err != nil {
			return err
		}
		err = tc.enqueue(ctx, tcpFrame{data: frame, msgs: msgs})
		if errors.Is(err, errRetired) {
			continue // evicted between lookup and enqueue: retry on a fresh conn
		}
		if err != nil {
			return err
		}
		t.stats.recordOut(out, msgs, len(frame))
		return nil
	}
}

// enqueue places f in the connection's bounded queue, applying the
// full-queue policy. Admission is the space semaphore (not the queue
// channel), so frames a cross-round batcher is still writing keep
// counting against the bound. While a sender waits here the connection
// counts as in use and cannot be evicted.
func (tc *tcpConn) enqueue(ctx context.Context, f tcpFrame) error {
	tc.stateMu.Lock()
	if tc.retired {
		tc.stateMu.Unlock()
		return errRetired
	}
	tc.pending++
	tc.lastUse = time.Now()
	tc.stateMu.Unlock()
	defer func() {
		tc.stateMu.Lock()
		tc.pending--
		tc.stateMu.Unlock()
	}()

	select {
	case <-tc.space:
	default:
		// Queue full: count it, then shed or wait per policy.
		tc.dst.sendBlocked.Add(1)
		flow := tc.net.flow
		if flow.Policy == QueueShed {
			return flow.errQueueFull(tc.addr)
		}
		wait := flow.sendWait(ctx)
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-tc.space:
		case <-timer.C:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return flow.errSendDeadline(tc.addr, wait)
		case <-ctx.Done():
			return ctx.Err()
		case <-tc.stop:
			return errRetired
		}
	}
	// A token is held, so the buffered channel always has room.
	tc.accepted()
	tc.queue <- f
	return nil
}

// accepted records one frame entering the queue. Depth is tracked both
// per connection (the eviction guard) and on the destination's node
// counters (the Stats view); the writer decrements both after the frame
// hits the wire.
func (tc *tcpConn) accepted() {
	tc.stateMu.Lock()
	tc.depth++
	tc.stateMu.Unlock()
	tc.dst.queueDepth.Add(1)
}

// writeLoop drains the queue, re-establishing the connection with
// jittered backoff on failure. The failing frame stays first in line,
// so the receiver observes the sender's acceptance order across any
// number of reconnects.
//
// With FlushDelay enabled the loop is the cross-round batcher: after
// picking up a frame it waits FlushDelay for late arrivals, then merges
// EVERYTHING queued (up to MaxBatchBytes of payload) into one wire
// frame via message.MergeBatch. Queue order becomes intra-batch order
// and the receiver delivers a frame's messages sequentially, so
// per-(sender,destination) FIFO is exactly what it was with one write
// per frame. A frame that would overflow the byte cap is carried into
// the next batch, never reordered. With FlushDelay 0 (the default) no
// merge code runs at all: one frame, one write, byte-identical to the
// pre-merge transport.
func (tc *tcpConn) writeLoop() {
	defer tc.net.writerWG.Done()
	var carry *tcpFrame // first frame of the next batch (byte-cap overflow)
	for {
		var f tcpFrame
		fromCarry := carry != nil
		if fromCarry {
			f, carry = *carry, nil
		} else {
			select {
			case <-tc.stop:
				return
			case f = <-tc.queue:
			}
		}
		wrote := 1
		if tc.net.flow.FlushDelay > 0 {
			batch, next, ok := tc.collectBatch(f, fromCarry)
			if !ok {
				return // retired mid-delay; accepted frames drop at Close only
			}
			carry = next
			wrote = len(batch)
			f = tc.mergeBatch(batch)
		}
		tc.writeFrame(f)
		tc.dst.queueDepth.Add(int64(-wrote))
		tc.stateMu.Lock()
		tc.depth -= int64(wrote)
		tc.lastUse = time.Now()
		tc.stateMu.Unlock()
		for i := 0; i < wrote; i++ {
			tc.space <- struct{}{}
		}
	}
}

// collectBatch implements the Nagle wait: it sleeps FlushDelay to let a
// subsequent firing round catch up, then drains the queue until empty or
// until adding a frame would push the merged payload past MaxBatchBytes
// (that frame is returned as the carry — the seed of the next batch).
// A carry-seeded batch skips the sleep: the backlog that split the last
// batch is already queued, so waiting buys nothing and would throttle a
// saturated destination to one MaxBatchBytes write per FlushDelay.
// Returns ok=false when the connection retired during the wait.
func (tc *tcpConn) collectBatch(first tcpFrame, fromCarry bool) (batch []tcpFrame, carry *tcpFrame, ok bool) {
	if !fromCarry && !tc.sleep(tc.net.flow.FlushDelay) {
		return nil, nil, false
	}
	batch = []tcpFrame{first}
	// Account against a conservative bound on the MERGED payload size
	// (batch header + per-frame promotion prefix + payload), so the
	// frame built by mergeBatch can never overshoot the cap — or, under
	// the clamp, maxFrame.
	total := mergeHeaderBound + mergeFrameBound + len(first.data) - 4
	maxBytes := tc.net.flow.MaxBatchBytes
	if maxBytes > maxFrame {
		maxBytes = maxFrame
	}
	for {
		select {
		case g := <-tc.queue:
			if total+mergeFrameBound+len(g.data)-4 > maxBytes {
				return batch, &g, true
			}
			batch = append(batch, g)
			total += mergeFrameBound + len(g.data) - 4
		default:
			return batch, nil, true
		}
	}
}

// mergeBatch folds the batch's payloads into one length-prefixed wire
// frame (documents copied verbatim, message.MergeBatch) and records the
// merge in the destination's stats. A batch of one is returned as-is —
// its bytes are never touched. The error/overflow branch is defense in
// depth: collectBatch's conservative byte accounting keeps a merged
// payload under min(MaxBatchBytes, maxFrame), and frames this transport
// encoded always merge — but if either assumption ever breaks, the
// frames are written individually in order (nothing reordered, nothing
// lost) and the last one is returned for the caller's write.
func (tc *tcpConn) mergeBatch(batch []tcpFrame) tcpFrame {
	if len(batch) == 1 {
		return batch[0]
	}
	payloads := make([][]byte, len(batch))
	for i, f := range batch {
		payloads[i] = f.data[4:]
	}
	merged, count, err := message.MergeBatch(payloads)
	if err != nil || len(merged) > maxFrame {
		for _, f := range batch[:len(batch)-1] {
			tc.writeFrame(f)
		}
		return batch[len(batch)-1]
	}
	frame := make([]byte, 4+len(merged))
	binary.BigEndian.PutUint32(frame, uint32(len(merged)))
	copy(frame[4:], merged)
	tc.dst.recordMerge(len(batch), count)
	return tcpFrame{data: frame, msgs: count}
}

// writeFrame writes one frame, retrying with backoff until it succeeds
// or the connection is retired. Accepted frames are only ever dropped at
// retirement (network Close), never silently mid-stream.
func (tc *tcpConn) writeFrame(f tcpFrame) {
	for attempt := 0; ; attempt++ {
		select {
		case <-tc.stop:
			return
		default:
		}
		if attempt > 0 {
			if !tc.sleep(tc.net.bo.delay(attempt)) {
				return
			}
		}
		c := tc.socket()
		if c == nil {
			nc, err := tc.redial()
			if err != nil {
				continue
			}
			c = nc
		}
		_ = c.SetWriteDeadline(time.Now().Add(tcpWriteTimeout))
		if _, err := c.Write(f.data); err == nil {
			return
		}
		tc.dropSocket(c)
	}
}

// sleep waits d, abandoned early when the connection retires or the
// network closes. Returns false when abandoned.
func (tc *tcpConn) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-tc.stop:
		return false
	case <-tc.net.stop:
		return false
	}
}

func (tc *tcpConn) socket() net.Conn {
	tc.sockMu.Lock()
	defer tc.sockMu.Unlock()
	return tc.c
}

// redial re-establishes the socket after a write failure, counting a
// reconnect on the destination's stats.
func (tc *tcpConn) redial() (net.Conn, error) {
	tc.stateMu.Lock()
	retired := tc.retired
	tc.stateMu.Unlock()
	if retired {
		return nil, errRetired
	}
	d := net.Dialer{Timeout: tc.net.DialTimeout}
	c, err := d.Dial("tcp", tc.addr)
	if err != nil {
		return nil, err
	}
	// Only the connection's single writer goroutine dials, so tc.c is
	// nil here; the lock only orders this store against retire.
	tc.sockMu.Lock()
	tc.c = c
	if tc.dialed {
		tc.dst.reconnects.Add(1)
	}
	tc.dialed = true
	tc.sockMu.Unlock()
	// A retire racing the dial closes tc.c under sockMu; re-check so a
	// socket established after that close cannot leak past Close.
	tc.stateMu.Lock()
	retired = tc.retired
	tc.stateMu.Unlock()
	if retired {
		tc.dropSocket(c)
		return nil, errRetired
	}
	return c, nil
}

// dropSocket closes and forgets the current socket (failed write).
func (tc *tcpConn) dropSocket(c net.Conn) {
	tc.sockMu.Lock()
	if tc.c == c {
		tc.c = nil
	}
	tc.sockMu.Unlock()
	c.Close()
}

// conn returns the cached connection for to, dialing it on first use.
// The first dial is synchronous so a send to an address nobody listens
// on fails fast with ErrUnknownAddress (the pre-flow-control contract).
func (t *TCP) conn(ctx context.Context, to string) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	d := net.Dialer{Timeout: t.DialTimeout}
	c, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrUnknownAddress, to, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		t.mu.Unlock()
		c.Close()
		return existing, nil
	}
	if t.flow.MaxConns > 0 && len(t.conns) >= t.flow.MaxConns {
		t.evictLRULocked()
	}
	tc := &tcpConn{
		net:  t,
		addr: to,
		dst:  t.stats.node(to),
		// Admission is bounded by the space semaphore (QueueLen tokens,
		// returned only after a frame is written), so frames the writer is
		// merging or writing still count; the channel merely carries what
		// was admitted and can never block a token holder.
		queue:   make(chan tcpFrame, t.flow.QueueLen),
		space:   make(chan struct{}, t.flow.QueueLen),
		stop:    make(chan struct{}),
		lastUse: time.Now(),
		c:       c,
		dialed:  true,
	}
	for i := 0; i < t.flow.QueueLen; i++ {
		tc.space <- struct{}{}
	}
	if t.ever[to] {
		// A fresh dial to a destination seen before: the previous cached
		// connection was evicted or lost — this is a reconnect, and the
		// eviction must be transparent to callers.
		tc.dst.reconnects.Add(1)
	}
	t.ever[to] = true
	t.conns[to] = tc
	t.writerWG.Add(1)
	t.mu.Unlock()
	go tc.writeLoop()
	return tc, nil
}

// evictLRULocked retires the least-recently-used idle connection to keep
// the cache under MaxConns. Connections with queued frames or waiting
// senders are never evicted (accepted frames are never dropped), so the
// cap is a soft bound when every destination is busy. Caller holds t.mu.
func (t *TCP) evictLRULocked() {
	var victim *tcpConn
	for _, tc := range t.conns {
		tc.stateMu.Lock()
		idle := tc.pending == 0 && tc.depth == 0
		last := tc.lastUse
		tc.stateMu.Unlock()
		if !idle {
			continue
		}
		if victim == nil || last.Before(victimLast(victim)) {
			victim = tc
		}
	}
	if victim != nil {
		t.retireLocked(victim)
	}
}

func victimLast(tc *tcpConn) time.Time {
	tc.stateMu.Lock()
	defer tc.stateMu.Unlock()
	return tc.lastUse
}

// retireLocked removes tc from the cache and stops its writer if it is
// still idle (no waiting sender, no queued frame). Returns whether the
// connection was retired. Caller holds t.mu.
func (t *TCP) retireLocked(tc *tcpConn) bool {
	tc.stateMu.Lock()
	if tc.retired || tc.pending != 0 || tc.depth != 0 {
		tc.stateMu.Unlock()
		return false
	}
	tc.retired = true
	close(tc.stop)
	tc.stateMu.Unlock()
	delete(t.conns, tc.addr)
	tc.sockMu.Lock()
	if tc.c != nil {
		tc.c.Close()
		tc.c = nil
	}
	tc.sockMu.Unlock()
	return true
}

// janitor ages out idle connections every IdleTimeout/4.
func (t *TCP) janitor() {
	interval := t.flow.IdleTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.mu.Lock()
			for _, tc := range t.conns {
				tc.stateMu.Lock()
				stale := tc.pending == 0 && tc.depth == 0 && time.Since(tc.lastUse) >= t.flow.IdleTimeout
				tc.stateMu.Unlock()
				if stale {
					t.retireLocked(tc)
				}
			}
			t.mu.Unlock()
		}
	}
}

// ConnCount reports the number of cached outbound connections — the
// observable for idle-eviction and max-conns tests and monitoring.
func (t *TCP) ConnCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

// Stats implements Network.
func (t *TCP) Stats() Stats { return t.stats.snapshot() }

// RecordFailover implements AvailabilityRecorder.
func (t *TCP) RecordFailover(addr string) { t.stats.RecordFailover(addr) }

// RecordShed implements AvailabilityRecorder.
func (t *TCP) RecordShed(addr string) { t.stats.RecordShed(addr) }

// RecordBreakerOpen implements AvailabilityRecorder.
func (t *TCP) RecordBreakerOpen(addr string) { t.stats.RecordBreakerOpen(addr) }

// Close implements Network. Accepted-but-unwritten frames are dropped
// (the network is going away); writers and the janitor stop.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.stop)
	eps := make([]*tcpEndpoint, 0, len(t.listeners))
	for _, ep := range t.listeners {
		eps = append(eps, ep)
	}
	t.listeners = map[string]*tcpEndpoint{}
	conns := t.conns
	t.conns = map[string]*tcpConn{}
	t.mu.Unlock()
	for _, tc := range conns {
		tc.stateMu.Lock()
		if !tc.retired {
			tc.retired = true
			close(tc.stop)
		}
		tc.stateMu.Unlock()
		tc.sockMu.Lock()
		if tc.c != nil {
			tc.c.Close()
			tc.c = nil
		}
		tc.sockMu.Unlock()
	}
	t.writerWG.Wait()
	for _, ep := range eps {
		ep.closeListener()
	}
	return nil
}

// tcpEndpoint is one listener plus its bounded receive lanes. Inbound
// frames are decoded on the connection's read loop, then handed to a
// lane picked by hashing the frame's logical source (laneFor): every
// frame from one sender lands on the same lane, and a lane delivers its
// frames to the handler one at a time, in arrival order. That makes
// cross-frame per-sender FIFO a pinned contract (the fault suite runs
// it against both transports) and caps delivery concurrency at
// RecvLanes goroutines — a burst used to spawn one goroutine per frame,
// unbounded. A full lane blocks the read loop: backpressure flows
// through the kernel socket to the sender's bounded write queue instead
// of materializing as goroutines here.
type tcpEndpoint struct {
	net     *TCP
	ln      net.Listener
	handler Handler
	rc      *nodeCounters // this endpoint's receive-side counters
	lanes   []chan []*message.Message
	laneWG  sync.WaitGroup
	stopc   chan struct{} // closed by closeListener; unblocks lanes

	mu       sync.Mutex
	closed   bool
	accepted map[net.Conn]struct{}
	wg       sync.WaitGroup
}

func (e *tcpEndpoint) Addr() string { return e.ln.Addr().String() }

func (e *tcpEndpoint) Close() error {
	e.net.mu.Lock()
	delete(e.net.listeners, e.Addr())
	e.net.mu.Unlock()
	e.closeListener()
	return nil
}

func (e *tcpEndpoint) closeListener() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.accepted))
	for c := range e.accepted {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	e.ln.Close()
	// Unblock readLoops waiting on peers that keep their cached outbound
	// connections open, and lanes they may be blocked feeding; frames
	// still queued in a lane are dropped (the endpoint is going away),
	// mirroring the write side's accepted-frames-drop-at-Close rule.
	close(e.stopc)
	for _, c := range conns {
		c.Close()
	}
	e.wg.Wait()
	e.laneWG.Wait()
	// Readers and workers are gone; account the dropped frames out of
	// the depth counter, which outlives the endpoint (a re-Listen on the
	// same address inherits it and must start from a clean gauge). Only
	// frames THIS endpoint accepted are subtracted — the lane-count
	// gauge is left alone, because a new endpoint may already have
	// re-listened on this address and stored its own value (zeroing it
	// here would clobber a live listener's stats).
	for _, lane := range e.lanes {
		for len(lane) > 0 {
			<-lane
			e.rc.recvQueueDepth.Add(-1)
		}
	}
}

func (e *tcpEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() {
				e.mu.Lock()
				delete(e.accepted, conn)
				e.mu.Unlock()
				conn.Close()
			}()
			e.readLoop(conn)
		}()
	}
}

// payloadPool recycles the per-frame read buffer: the decoder copies
// every string it returns, so the buffer's bytes are dead the moment
// UnmarshalBatch returns and the allocation (the read path's largest)
// can be reused across frames and connections. Buffers above poolMaxBuf
// are left for the GC — one jumbo frame must not pin megabytes forever.
var payloadPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

const poolMaxBuf = 64 << 10

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return // corrupt stream; drop the connection
		}
		bufp := payloadPool.Get().(*[]byte)
		if cap(*bufp) < int(n) {
			*bufp = make([]byte, n)
		}
		payload := (*bufp)[:n]
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		ms, err := message.UnmarshalBatch(payload)
		if cap(payload) <= poolMaxBuf {
			payloadPool.Put(bufp) // decode copied everything it kept
		}
		if err != nil {
			continue // skip malformed frame, keep the connection
		}
		e.net.stats.recordIn(e.Addr(), len(ms), int(n)+4)
		// Hand the frame to its sender's lane, keyed by the frame's
		// LOGICAL source (first message's From — engine outboxes batch
		// one source per frame): stable across connections and
		// reconnects, unlike the peer's ephemeral port, and distinct for
		// co-located sender processes, unlike the peer's IP. The
		// messages of a batch reach the handler sequentially, in batch
		// order, and frames of one sender deliver in arrival order. A
		// full lane blocks this read loop (backpressure), not the
		// process.
		lane := e.lanes[laneFor(ms[0].From, len(e.lanes))]
		e.rc.recvQueueDepth.Add(1)
		select {
		case lane <- ms:
		case <-e.stopc:
			e.rc.recvQueueDepth.Add(-1)
			return
		}
	}
}

// laneLoop delivers one receive lane's frames, sequentially. It exits
// when the endpoint closes; frames still queued then are dropped.
func (e *tcpEndpoint) laneLoop(lane chan []*message.Message) {
	defer e.laneWG.Done()
	ctx := context.Background()
	for {
		select {
		case ms := <-lane:
			for _, m := range ms {
				e.handler(ctx, m)
			}
			e.rc.recvQueueDepth.Add(-1)
		case <-e.stopc:
			return
		}
	}
}
