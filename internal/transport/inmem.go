package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"selfserv/internal/message"
)

// InMemOptions configures fault and latency injection on an in-memory
// network.
type InMemOptions struct {
	// Latency delays every frame delivery by a fixed duration (simulated
	// wire time). Zero means immediate.
	Latency time.Duration
	// DropRate in [0,1) silently drops that fraction of messages. Drop
	// decisions are per message, in send order, even inside a batch —
	// one RNG draw per message — so a batched round drops exactly the
	// messages the equivalent sequential sends would drop under the same
	// seed. A dropped message still counts as sent by the sender but
	// never counts in the receiver's MsgsIn. Byte accounting is per
	// frame: BytesIn records the whole frame when at least one of its
	// messages survives (a partially-dropped batch still delivers the
	// full frame's bytes), and nothing when the entire frame is lost.
	// Used for availability experiments.
	DropRate float64
	// Seed makes drop decisions reproducible. Zero uses a fixed default.
	Seed int64
	// Synchronous delivers messages on the caller's goroutine (after
	// Latency). Deterministic ordering for tests; production-shaped runs
	// should leave it false.
	Synchronous bool
}

// InMem is a process-local Network. Every frame is marshalled and
// unmarshalled exactly as on the TCP path — batches included — so
// serialization bugs and costs are identical; only the socket is elided.
type InMem struct {
	opts  InMemOptions
	stats *statsBook

	mu        sync.RWMutex
	handlers  map[string]Handler
	closed    bool
	rng       *rand.Rand
	rngMu     sync.Mutex
	deliverWG sync.WaitGroup
}

// NewInMem returns an in-memory network with the given options.
func NewInMem(opts InMemOptions) *InMem {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &InMem{
		opts:     opts,
		stats:    newStatsBook(),
		handlers: map[string]Handler{},
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// MintAddr implements Network: any non-empty name is a valid in-memory
// address, so the logical hint is used as-is.
func (n *InMem) MintAddr(hint string) string {
	if hint == "" {
		return "node"
	}
	return hint
}

// Listen implements Network.
func (n *InMem) Listen(addr string, h Handler) (Endpoint, error) {
	if addr == "" {
		return nil, fmt.Errorf("transport: empty address")
	}
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.handlers[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	n.handlers[addr] = h
	return &inmemEndpoint{net: n, addr: addr}, nil
}

// Open implements Opener.
func (n *InMem) Open(from string) Sender {
	return &inmemSender{net: n, from: from, out: n.stats.node(from)}
}

// inmemSender is the in-memory Sender handle.
type inmemSender struct {
	net  *InMem
	from string
	out  *nodeCounters
}

func (s *inmemSender) From() string { return s.from }

func (s *inmemSender) Send(ctx context.Context, to string, m *message.Message) error {
	return s.net.sendOne(ctx, s.out, to, m)
}

func (s *inmemSender) SendBatch(ctx context.Context, to string, ms []*message.Message) error {
	return s.net.sendBatch(ctx, s.out, to, ms)
}

// Send implements Network (unattributed batch of one).
func (n *InMem) Send(ctx context.Context, to string, m *message.Message) error {
	return n.sendOne(ctx, nil, to, m)
}

// SendBatch implements Network (unattributed).
func (n *InMem) SendBatch(ctx context.Context, to string, ms []*message.Message) error {
	return n.sendBatch(ctx, nil, to, ms)
}

// sendOne is the batch of one without the slice detour.
func (n *InMem) sendOne(ctx context.Context, out *nodeCounters, to string, m *message.Message) error {
	data, err := encodeOne(m)
	if err != nil {
		return err
	}
	return n.deliverFrame(ctx, out, to, data, 1)
}

// sendBatch is deliver-many: one simulated frame, per-message drop
// decisions, surviving messages handed to the handler sequentially in
// batch order.
func (n *InMem) sendBatch(ctx context.Context, out *nodeCounters, to string, ms []*message.Message) error {
	if len(ms) == 0 {
		return nil
	}
	data, err := encodeBatch(ms)
	if err != nil {
		return err
	}
	return n.deliverFrame(ctx, out, to, data, len(ms))
}

// deliverFrame simulates one wire frame carrying msgs messages.
func (n *InMem) deliverFrame(ctx context.Context, out *nodeCounters, to string, data []byte, msgs int) error {
	async := !n.opts.Synchronous
	n.mu.RLock()
	h, ok := n.handlers[to]
	closed := n.closed
	if !closed && ok && async {
		// Register the delivery while holding the lock that Close takes
		// before it Waits: an Add racing a started Wait is undefined, so the
		// counter must be bumped strictly before Close can observe it.
		n.deliverWG.Add(1)
	}
	n.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAddress, to)
	}

	// The sender pays for the whole frame regardless of drops.
	n.stats.recordOut(out, msgs, len(data))

	// The drop coin is tossed at send time, one draw per message in send
	// order — stable RNG consumption, so a batch loses exactly what the
	// equivalent sequential sends would lose under the same seed. The
	// decode itself happens on the delivery goroutine (as on the TCP
	// read side), keeping the sender's critical path free of it.
	var drops []bool
	keptCount := msgs
	if n.opts.DropRate > 0 {
		drops = make([]bool, msgs)
		for i := range drops {
			if n.dropped() {
				drops[i] = true
				keptCount--
			}
		}
	}
	if keptCount == 0 {
		if async {
			n.deliverWG.Done() // no delivery will happen
		}
		return nil
	}
	n.stats.recordIn(to, keptCount, len(data))

	deliver := func() {
		if n.opts.Latency > 0 {
			timer := time.NewTimer(n.opts.Latency)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return
			}
		}
		// encode/decode are inverses; decode failure is unreachable
		// unless the message vocabulary itself is broken, which tests
		// catch.
		if msgs == 1 {
			m, err := message.Unmarshal(data)
			if err == nil {
				h(ctx, m)
			}
			return
		}
		decoded, err := message.UnmarshalBatch(data)
		if err != nil {
			return
		}
		for i, m := range decoded {
			if drops != nil && drops[i] {
				continue
			}
			h(ctx, m)
		}
	}
	if !async {
		deliver()
		return nil
	}
	go func() {
		defer n.deliverWG.Done()
		deliver()
	}()
	return nil
}

func (n *InMem) dropped() bool {
	if n.opts.DropRate <= 0 {
		return false
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64() < n.opts.DropRate
}

// Stats implements Network.
func (n *InMem) Stats() Stats { return n.stats.snapshot() }

// Close implements Network. It waits for in-flight asynchronous
// deliveries to finish so tests can assert on final state.
func (n *InMem) Close() error {
	n.mu.Lock()
	n.closed = true
	n.handlers = map[string]Handler{}
	n.mu.Unlock()
	n.deliverWG.Wait()
	return nil
}

type inmemEndpoint struct {
	net  *InMem
	addr string
}

func (e *inmemEndpoint) Addr() string { return e.addr }

func (e *inmemEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	delete(e.net.handlers, e.addr)
	return nil
}
