package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"selfserv/internal/message"
)

// InMemOptions configures fault and latency injection on an in-memory
// network.
type InMemOptions struct {
	// Latency delays every delivery by a fixed duration (simulated wire
	// time). Zero means immediate.
	Latency time.Duration
	// DropRate in [0,1) silently drops that fraction of messages. A
	// dropped message still counts as sent by the sender but never counts
	// as received. Used for availability experiments.
	DropRate float64
	// Seed makes drop decisions reproducible. Zero uses a fixed default.
	Seed int64
	// Synchronous delivers messages on the caller's goroutine (after
	// Latency). Deterministic ordering for tests; production-shaped runs
	// should leave it false.
	Synchronous bool
}

// InMem is a process-local Network. Every message is marshalled and
// unmarshalled exactly as on the TCP path, so serialization bugs and costs
// are identical; only the socket is elided.
type InMem struct {
	opts  InMemOptions
	stats *statsBook

	mu        sync.RWMutex
	handlers  map[string]Handler
	closed    bool
	rng       *rand.Rand
	rngMu     sync.Mutex
	deliverWG sync.WaitGroup
}

// NewInMem returns an in-memory network with the given options.
func NewInMem(opts InMemOptions) *InMem {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &InMem{
		opts:     opts,
		stats:    newStatsBook(),
		handlers: map[string]Handler{},
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Listen implements Network.
func (n *InMem) Listen(addr string, h Handler) (Endpoint, error) {
	if addr == "" {
		return nil, fmt.Errorf("transport: empty address")
	}
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.handlers[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	n.handlers[addr] = h
	return &inmemEndpoint{net: n, addr: addr}, nil
}

// Send implements Network.
func (n *InMem) Send(ctx context.Context, to string, m *message.Message) error {
	data, err := encode(m)
	if err != nil {
		return err
	}
	async := !n.opts.Synchronous
	n.mu.RLock()
	h, ok := n.handlers[to]
	closed := n.closed
	if !closed && ok && async {
		// Register the delivery while holding the lock that Close takes
		// before it Waits: an Add racing a started Wait is undefined, so the
		// counter must be bumped strictly before Close can observe it.
		n.deliverWG.Add(1)
	}
	n.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAddress, to)
	}
	sender := SenderFrom(ctx)
	if n.dropped() {
		if async {
			n.deliverWG.Done() // no delivery will happen
		}
		// The sender paid the cost of sending; the receiver never sees it.
		n.stats.mu.Lock()
		if sender != "" {
			s := n.stats.node(sender)
			s.MsgsOut++
			s.BytesOut += int64(len(data))
		}
		n.stats.mu.Unlock()
		return nil
	}
	n.stats.recordSend(sender, to, len(data))

	deliver := func() {
		if n.opts.Latency > 0 {
			timer := time.NewTimer(n.opts.Latency)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return
			}
		}
		decoded, err := message.Unmarshal(data)
		if err != nil {
			// encode/decode are inverses; this is unreachable unless the
			// message vocabulary itself is broken, which tests catch.
			return
		}
		h(ctx, decoded)
	}
	if !async {
		deliver()
		return nil
	}
	go func() {
		defer n.deliverWG.Done()
		deliver()
	}()
	return nil
}

func (n *InMem) dropped() bool {
	if n.opts.DropRate <= 0 {
		return false
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64() < n.opts.DropRate
}

// Stats implements Network.
func (n *InMem) Stats() Stats { return n.stats.snapshot() }

// Close implements Network. It waits for in-flight asynchronous
// deliveries to finish so tests can assert on final state.
func (n *InMem) Close() error {
	n.mu.Lock()
	n.closed = true
	n.handlers = map[string]Handler{}
	n.mu.Unlock()
	n.deliverWG.Wait()
	return nil
}

type inmemEndpoint struct {
	net  *InMem
	addr string
}

func (e *inmemEndpoint) Addr() string { return e.addr }

func (e *inmemEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	delete(e.net.handlers, e.addr)
	return nil
}
