package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"selfserv/internal/message"
)

// InMemOptions configures fault and latency injection on an in-memory
// network.
type InMemOptions struct {
	// Latency delays every frame delivery by a fixed duration (simulated
	// wire time). Zero means immediate.
	Latency time.Duration
	// DropRate in [0,1) silently drops that fraction of messages. Drop
	// decisions are per message, in send order, even inside a batch —
	// one RNG draw per message — so a batched round drops exactly the
	// messages the equivalent sequential sends would drop under the same
	// seed. A dropped message still counts as sent by the sender but
	// never counts in the receiver's MsgsIn. Byte accounting is per
	// frame: BytesIn records the whole frame when at least one of its
	// messages survives (a partially-dropped batch still delivers the
	// full frame's bytes), and nothing when the entire frame is lost.
	// Used for availability experiments.
	DropRate float64
	// Seed makes drop decisions reproducible. Zero uses a fixed default.
	Seed int64
	// Synchronous delivers messages on the caller's goroutine (after
	// Latency). Deterministic ordering for tests; production-shaped runs
	// should leave it false.
	Synchronous bool
	// Flow tunes the bounded per-destination queue that materializes
	// while a destination is stalled by Hold or Cut (queue capacity,
	// full-queue policy, send deadline), plus cross-round batching: with
	// FlushDelay > 0 the Release/Restore drain merges the queued backlog
	// into MaxBatchBytes-capped frames, deterministically mirroring the
	// TCP writer's Nagle loop. The lifecycle knobs (IdleTimeout,
	// MaxConns, backoff) have no in-memory equivalent and are ignored.
	Flow FlowOptions
}

// InMem is a process-local Network. Every frame is marshalled and
// unmarshalled exactly as on the TCP path — batches included — so
// serialization bugs and costs are identical; only the socket is elided.
//
// InMem doubles as the deterministic fault harness for the flow-control
// contract: Hold stalls a destination (the slow-peer injection — frames
// queue in a bounded per-destination queue exactly as TCP frames queue
// behind a non-reading peer), Cut severs it (the disconnect injection),
// and Release/Restore drain the queued frames in acceptance order, so
// per-sender FIFO across an outage is testable without clocks or real
// sockets. Drop draws stay per message in send order even for queued
// frames, so batched ≡ sequential holds under one seed with faults
// active.
type InMem struct {
	opts     InMemOptions
	flow     FlowOptions
	stats    *statsBook
	breakers *sendBreakers // nil unless Flow.Breaker is set

	mu        sync.RWMutex
	handlers  map[string]Handler
	hver      map[string]uint64 // bumped per (re-)registration of an address
	peers     map[string]*inmemPeer
	lanes     map[string][]chan inmemJob // per listening addr; see deliverDirect
	closed    bool
	stop      chan struct{} // closed by Close; wakes senders blocked on a full queue
	rng       *rand.Rand
	rngMu     sync.Mutex
	deliverWG sync.WaitGroup
}

// inmemJob is one frame accepted onto a receive lane (async mode): the
// decoded-on-delivery payload plus everything the lane worker needs to
// hand it to the handler. done, when non-nil, is closed after delivery
// (Release waits on it so drains stay synchronous to their caller).
// due is the simulated-wire-time deadline, stamped AT SEND TIME (zero
// for frames drained from a Hold/Cut queue — they already "spent"
// theirs): the worker delivers no earlier than due, so every frame is
// delayed by exactly Latency while back-to-back frames on one lane
// "fly" concurrently instead of queueing their delays.
type inmemJob struct {
	ctx   context.Context
	data  []byte
	msgs  int
	drops []bool
	h     Handler
	due   time.Time
	done  chan struct{}
}

// NewInMem returns an in-memory network with the given options.
func NewInMem(opts InMemOptions) *InMem {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	stats := newStatsBook()
	flow := opts.Flow.withDefaults()
	return &InMem{
		opts:     opts,
		flow:     flow,
		stats:    stats,
		breakers: newSendBreakers(flow, stats),
		handlers: map[string]Handler{},
		hver:     map[string]uint64{},
		peers:    map[string]*inmemPeer{},
		lanes:    map[string][]chan inmemJob{},
		stop:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// inmemPeer is the fault state of one destination: while stalled, frames
// are accepted into a bounded FIFO queue (or refused per the flow
// policy) instead of being delivered.
type inmemPeer struct {
	slots   chan struct{} // queue capacity semaphore
	drainMu sync.Mutex    // serializes Release/Restore drains

	mu      sync.Mutex
	stalled bool
	cut     bool
	queue   []inmemFrame
}

// inmemFrame is one accepted-but-undelivered frame. kept counts the
// messages that survived their send-time drop draws; the receiver's
// stats record it at DELIVERY time (the drain), matching TCP's
// read-side accounting — a frame dropped at Close never counts as
// received. hver is the address's registration version when the frame
// captured its handler: the drain only merges frames with equal hver,
// so a re-registration mid-stall keeps each frame bound to the handler
// it was accepted for (merged ≡ sequential even across Listen churn).
// lane is the receive lane the frame belongs to (hash of the sender's
// from-address): the drain routes each frame through its sender's lane
// in async mode and only merges consecutive same-lane frames, so
// per-sender FIFO holds across a stall exactly as it holds live.
type inmemFrame struct {
	data  []byte
	msgs  int
	kept  int
	drops []bool
	h     Handler
	hver  uint64
	lane  int
}

// MintAddr implements Network: any non-empty name is a valid in-memory
// address, so the logical hint is used as-is.
func (n *InMem) MintAddr(hint string) string {
	if hint == "" {
		return "node"
	}
	return hint
}

// Listen implements Network.
func (n *InMem) Listen(addr string, h Handler) (Endpoint, error) {
	if addr == "" {
		return nil, fmt.Errorf("transport: empty address")
	}
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.handlers[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	n.handlers[addr] = h
	n.hver[addr]++ // frames queued for an older registration never merge with this one's
	if !n.opts.Synchronous && n.lanes[addr] == nil {
		// Bounded receive lanes, the deterministic twin of the TCP
		// endpoint's: frames hash by sender onto a lane, each lane
		// delivers sequentially in arrival order. Lanes persist across
		// re-registrations of the address (queued jobs carry their own
		// handler) and stop at network Close. In Synchronous mode the
		// sender's goroutine is the lane, so none are built.
		lanes := make([]chan inmemJob, n.flow.RecvLanes)
		for i := range lanes {
			lanes[i] = make(chan inmemJob, n.flow.RecvQueueLen)
			go n.laneLoop(n.stats.node(addr), lanes[i])
		}
		n.lanes[addr] = lanes
		n.stats.node(addr).recvLanes.Store(int64(len(lanes)))
	}
	return &inmemEndpoint{net: n, addr: addr}, nil
}

// laneLoop delivers one receive lane's jobs, sequentially, until the
// lane is closed (network Close, after every accepted job has drained).
func (n *InMem) laneLoop(dst *nodeCounters, lane chan inmemJob) {
	for job := range lane {
		n.deliverPayload(job.ctx, job.h, job.data, job.msgs, job.drops, job.due)
		dst.recvQueueDepth.Add(-1)
		if job.done != nil {
			close(job.done)
		}
		n.deliverWG.Done()
	}
}

// Open implements Opener.
func (n *InMem) Open(from string) Sender {
	return &inmemSender{net: n, from: from, out: n.stats.node(from)}
}

// inmemSender is the in-memory Sender handle.
type inmemSender struct {
	net  *InMem
	from string
	out  *nodeCounters
}

func (s *inmemSender) From() string { return s.from }

func (s *inmemSender) Send(ctx context.Context, to string, m *message.Message) error {
	return s.net.sendOne(ctx, s.out, to, m)
}

func (s *inmemSender) SendBatch(ctx context.Context, to string, ms []*message.Message) error {
	return s.net.sendBatch(ctx, s.out, to, ms)
}

// Send implements Network (unattributed batch of one).
func (n *InMem) Send(ctx context.Context, to string, m *message.Message) error {
	return n.sendOne(ctx, nil, to, m)
}

// SendBatch implements Network (unattributed).
func (n *InMem) SendBatch(ctx context.Context, to string, ms []*message.Message) error {
	return n.sendBatch(ctx, nil, to, ms)
}

// Hold stalls deliveries to addr: the slow-peer injection. Subsequent
// frames to addr are accepted into its bounded queue (blocking or
// shedding per InMemOptions.Flow when full) until Release. Deterministic
// and clock-free: a test decides exactly when the peer is slow and when
// it drains.
func (n *InMem) Hold(addr string) { n.stall(addr, false) }

// Cut severs the link to addr: the disconnect injection. Semantics of
// queueing are identical to Hold (frames queue as they would queue in a
// reconnecting TCP sender); Restore re-links, counts one reconnect in
// the destination's stats, and drains in order.
func (n *InMem) Cut(addr string) { n.stall(addr, true) }

func (n *InMem) stall(addr string, cut bool) {
	n.mu.Lock()
	p, ok := n.peers[addr]
	if !ok {
		p = &inmemPeer{slots: make(chan struct{}, n.flow.QueueLen)}
		n.peers[addr] = p
	}
	n.mu.Unlock()
	p.mu.Lock()
	p.stalled = true
	p.cut = p.cut || cut
	p.mu.Unlock()
}

// Release ends a Hold: queued frames are delivered synchronously on the
// caller's goroutine, in acceptance order (per-sender FIFO), then direct
// delivery resumes. Sends racing the drain keep queueing behind it, so
// nothing ever overtakes a queued frame. Simulated Latency is not
// re-applied to drained frames. A no-op if addr was never stalled.
func (n *InMem) Release(addr string) { n.unstall(addr, false) }

// Restore ends a Cut: like Release, plus one reconnect recorded in the
// destination's stats (the TCP equivalent re-dials once and resumes the
// queue).
func (n *InMem) Restore(addr string) { n.unstall(addr, true) }

func (n *InMem) unstall(addr string, reconnect bool) {
	n.mu.RLock()
	p := n.peers[addr]
	n.mu.RUnlock()
	if p == nil {
		return
	}
	p.drainMu.Lock()
	defer p.drainMu.Unlock()

	p.mu.Lock()
	if !p.stalled {
		p.mu.Unlock()
		return
	}
	wasCut := p.cut
	p.mu.Unlock()
	if reconnect && wasCut {
		n.stats.node(addr).reconnects.Add(1)
	}
	dst := n.stats.node(addr)
	// Drain with stalled still set: a handler reached during the drain
	// (or a concurrent sender) that sends to addr again enqueues BEHIND
	// the remaining queued frames instead of overtaking them.
	//
	// With FlushDelay enabled the drain is this network's cross-round
	// batcher (the deterministic twin of the TCP writer's Nagle loop): it
	// takes EVERYTHING queued at this moment — the backlog is exactly
	// what a TCP writer would find after its delay — and folds
	// consecutive frames into merged deliveries up to MaxBatchBytes.
	// Queue order becomes intra-frame order, handled sequentially, so
	// delivery is indistinguishable from the unmerged drain except in
	// frame counts and merge stats.
	for {
		p.mu.Lock()
		if len(p.queue) == 0 {
			p.stalled = false
			p.cut = false
			p.mu.Unlock()
			return
		}
		take := 1
		if n.flow.FlushDelay > 0 {
			// Same conservative merged-size bound as the TCP collector, so
			// the cap means the same thing on both transports. Only
			// consecutive frames of the SAME receive lane merge: a merged
			// frame delivers on one lane, so folding across lanes would
			// trade one sender's FIFO for another's.
			total := mergeHeaderBound + mergeFrameBound + len(p.queue[0].data)
			for take < len(p.queue) &&
				total+mergeFrameBound+len(p.queue[take].data) <= n.flow.MaxBatchBytes &&
				p.queue[take].hver == p.queue[0].hver &&
				p.queue[take].lane == p.queue[0].lane {
				total += mergeFrameBound + len(p.queue[take].data)
				take++
			}
		}
		batch := append([]inmemFrame(nil), p.queue[:take]...)
		p.queue = p.queue[take:]
		p.mu.Unlock()
		for i := 0; i < take; i++ {
			<-p.slots
		}
		dst.queueDepth.Add(int64(-take))
		for _, f := range n.mergeQueued(dst, batch) {
			if !n.deliverDrained(addr, f) {
				return // network closed mid-drain: remaining frames drop, as at Close
			}
		}
	}
}

// deliverDrained hands one drained frame over. In Synchronous mode it
// delivers inline on the caller's goroutine (acceptance order, the
// documented Release contract). In async mode it routes the frame
// through the sender's receive lane — behind any live frames already
// queued there, preserving per-sender FIFO — and waits for the delivery
// before returning, so Release stays synchronous to its caller either
// way. Returns false when the network closed underneath the drain.
func (n *InMem) deliverDrained(addr string, f inmemFrame) bool {
	if n.opts.Synchronous {
		n.stats.recordIn(addr, f.kept, len(f.data))
		n.deliverPayload(context.Background(), f.h, f.data, f.msgs, f.drops, time.Time{})
		return true
	}
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return false
	}
	laneCh := n.lanes[addr][f.lane]
	n.deliverWG.Add(1)
	n.mu.RUnlock()
	n.stats.recordIn(addr, f.kept, len(f.data))
	dst := n.stats.node(addr)
	dst.recvQueueDepth.Add(1)
	done := make(chan struct{})
	laneCh <- inmemJob{ctx: context.Background(), data: f.data, msgs: f.msgs, drops: f.drops, h: f.h, done: done}
	<-done
	return true
}

// mergeQueued folds a drained batch into one frame: payloads merged
// byte-wise (message.MergeBatch), per-message drop decisions — already
// drawn at send time, in send order — concatenated to match the merged
// decode order. A batch of one passes through untouched. A merge error
// is unreachable for frames this network encoded; if it surfaces
// anyway, the frames are returned unmerged, in order — delivery
// degrades to the pre-merge drain instead of losing anything.
func (n *InMem) mergeQueued(dst *nodeCounters, batch []inmemFrame) []inmemFrame {
	if len(batch) == 1 {
		return batch
	}
	payloads := make([][]byte, len(batch))
	anyDrops := false
	for i, f := range batch {
		payloads[i] = f.data
		anyDrops = anyDrops || f.drops != nil
	}
	merged, count, err := message.MergeBatch(payloads)
	if err != nil {
		return batch
	}
	out := inmemFrame{data: merged, msgs: count, h: batch[0].h, lane: batch[0].lane}
	for _, f := range batch {
		out.kept += f.kept
		if anyDrops {
			drops := f.drops
			if drops == nil {
				drops = make([]bool, f.msgs)
			}
			out.drops = append(out.drops, drops...)
		}
	}
	dst.recordMerge(len(batch), count)
	return []inmemFrame{out}
}

// sendOne is the batch of one without the slice detour. The receive
// lane is keyed by the message's logical source (m.From) — see
// deliverFrame.
func (n *InMem) sendOne(ctx context.Context, out *nodeCounters, to string, m *message.Message) error {
	data, err := encodeOne(m)
	if err != nil {
		return err
	}
	return n.deliverFrame(ctx, out, m.From, to, data, 1)
}

// sendBatch is deliver-many: one simulated frame, per-message drop
// decisions, surviving messages handed to the handler sequentially in
// batch order. The frame's lane is keyed by its first message's From —
// engine outboxes only ever batch one logical source per frame, so the
// key is uniform in practice.
func (n *InMem) sendBatch(ctx context.Context, out *nodeCounters, to string, ms []*message.Message) error {
	if len(ms) == 0 {
		return nil
	}
	data, err := encodeBatch(ms)
	if err != nil {
		return err
	}
	return n.deliverFrame(ctx, out, ms[0].From, to, data, len(ms))
}

// deliverFrame simulates one wire frame carrying msgs messages. from is
// the frame's logical source (its first message's From) — the receive
// lane key, chosen to match the TCP read side exactly: stable across
// connections and reconnects, and distinct for co-located senders.
// With Flow.Breaker set, the destination's breaker gates the frame
// BEFORE any queue admission (an open breaker refuses instantly) and is
// fed the flow-control outcome.
func (n *InMem) deliverFrame(ctx context.Context, out *nodeCounters, from, to string, data []byte, msgs int) error {
	if err := n.breakers.allow(to); err != nil {
		return err
	}
	err := n.deliverFrameAdmitted(ctx, out, from, to, data, msgs)
	n.breakers.record(to, err)
	return err
}

// deliverFrameAdmitted is deliverFrame past the breaker gate.
func (n *InMem) deliverFrameAdmitted(ctx context.Context, out *nodeCounters, from, to string, data []byte, msgs int) error {
	n.mu.RLock()
	h, ok := n.handlers[to]
	hver := n.hver[to]
	closed := n.closed
	p := n.peers[to]
	n.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAddress, to)
	}

	lane := laneFor(from, n.flow.RecvLanes)
	if p != nil {
		done, err := n.offerStalled(ctx, p, out, to, h, hver, lane, data, msgs)
		if done || err != nil {
			return err
		}
	}
	return n.deliverDirect(ctx, out, to, h, lane, data, msgs)
}

// offerStalled routes a frame into the bounded queue of a stalled
// destination, applying the full-queue policy. Returns done=true when
// the frame was consumed (queued, fully dropped, or refused with err);
// done=false means the destination is not stalled and the caller should
// deliver directly.
func (n *InMem) offerStalled(ctx context.Context, p *inmemPeer, out *nodeCounters, to string, h Handler, hver uint64, lane int, data []byte, msgs int) (bool, error) {
	p.mu.Lock()
	stalled := p.stalled
	p.mu.Unlock()
	if !stalled {
		return false, nil
	}

	// Reserve a queue slot: the bounded-queue admission decision (the
	// same policy, wait, and wording as the TCP enqueue path).
	select {
	case p.slots <- struct{}{}:
	default:
		n.stats.node(to).sendBlocked.Add(1)
		if n.flow.Policy == QueueShed {
			return true, n.flow.errQueueFull(to)
		}
		wait := n.flow.sendWait(ctx)
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case p.slots <- struct{}{}:
		case <-timer.C:
			if ctx.Err() != nil {
				return true, ctx.Err()
			}
			return true, n.flow.errSendDeadline(to, wait)
		case <-ctx.Done():
			return true, ctx.Err()
		case <-n.stop:
			return true, ErrClosed
		}
	}

	p.mu.Lock()
	if !p.stalled {
		// Released while we waited for space: give the slot back and let
		// the caller deliver directly.
		p.mu.Unlock()
		<-p.slots
		return false, nil
	}
	// Accepted. The sender pays now, and the drop coins are tossed now —
	// at send time, in send order — so the RNG stream is identical
	// whether or not the destination happens to be stalled, and batched
	// sends lose exactly what sequential sends would lose. The RECEIVER
	// pays only at the drain (see inmemFrame.kept).
	n.stats.recordOut(out, msgs, len(data))
	drops, kept := n.drawDrops(msgs)
	if kept == 0 {
		p.mu.Unlock()
		<-p.slots // the whole frame was lost: nothing to queue
		return true, nil
	}
	p.queue = append(p.queue, inmemFrame{data: data, msgs: msgs, kept: kept, drops: drops, h: h, hver: hver, lane: lane})
	p.mu.Unlock()
	n.stats.node(to).queueDepth.Add(1)
	return true, nil
}

// deliverDirect is the no-fault path. In Synchronous mode the frame is
// delivered inline on the caller's goroutine, exactly as the
// pre-flow-control network did. Otherwise it is enqueued onto the
// destination's receive lane for the sending address: bounded, FIFO per
// sender, delivered by the lane's worker — the deterministic twin of
// the TCP endpoint's laned read side. A full lane blocks the sender
// (the in-memory stand-in for socket backpressure); it never drops.
func (n *InMem) deliverDirect(ctx context.Context, out *nodeCounters, to string, h Handler, lane int, data []byte, msgs int) error {
	async := !n.opts.Synchronous
	var laneCh chan inmemJob
	if async {
		// Register the delivery while holding the lock that Close takes
		// before it Waits: an Add racing a started Wait is undefined, so the
		// counter must be bumped strictly before Close can observe it. The
		// same critical section resolves the lane: once the Add is in,
		// Close's Wait cannot return before this job is enqueued and
		// delivered, so the lane's worker is guaranteed still draining.
		n.mu.RLock()
		if n.closed {
			n.mu.RUnlock()
			return ErrClosed
		}
		laneCh = n.lanes[to][lane]
		n.deliverWG.Add(1)
		n.mu.RUnlock()
	}

	// The sender pays for the whole frame regardless of drops.
	n.stats.recordOut(out, msgs, len(data))

	// The drop coin is tossed at send time, one draw per message in send
	// order — stable RNG consumption, so a batch loses exactly what the
	// equivalent sequential sends would lose under the same seed. The
	// decode itself happens on the lane worker (as on the TCP read
	// side), keeping the sender's critical path free of it.
	drops, kept := n.drawDrops(msgs)
	if kept == 0 {
		if async {
			n.deliverWG.Done() // no delivery will happen
		}
		return nil
	}
	n.stats.recordIn(to, kept, len(data))

	var due time.Time
	if n.opts.Latency > 0 {
		due = time.Now().Add(n.opts.Latency)
	}
	if !async {
		n.deliverPayload(ctx, h, data, msgs, drops, due)
		return nil
	}
	n.stats.node(to).recvQueueDepth.Add(1)
	laneCh <- inmemJob{ctx: ctx, data: data, msgs: msgs, drops: drops, h: h, due: due}
	return nil
}

// deliverPayload decodes one frame and hands its surviving messages to
// h sequentially, no earlier than due — the simulated-wire-time
// deadline stamped when the frame was sent, so consecutive frames on
// one lane each arrive Latency after THEIR send, not after each other
// (a zero due skips the wait: frames drained from a stall queue
// already spent their wire time). encode/decode are inverses; decode
// failure is unreachable unless the message vocabulary itself is
// broken, which tests catch.
func (n *InMem) deliverPayload(ctx context.Context, h Handler, data []byte, msgs int, drops []bool, due time.Time) {
	if wait := time.Until(due); !due.IsZero() && wait > 0 {
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return
		}
	}
	if msgs == 1 {
		m, err := message.Unmarshal(data)
		if err == nil {
			h(ctx, m)
		}
		return
	}
	decoded, err := message.UnmarshalBatch(data)
	if err != nil {
		return
	}
	for i, m := range decoded {
		if drops != nil && drops[i] {
			continue
		}
		h(ctx, m)
	}
}

// drawDrops tosses one seeded drop coin per message, in send order.
func (n *InMem) drawDrops(msgs int) ([]bool, int) {
	if n.opts.DropRate <= 0 {
		return nil, msgs
	}
	drops := make([]bool, msgs)
	kept := msgs
	for i := range drops {
		if n.dropped() {
			drops[i] = true
			kept--
		}
	}
	return drops, kept
}

func (n *InMem) dropped() bool {
	if n.opts.DropRate <= 0 {
		return false
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64() < n.opts.DropRate
}

// Stats implements Network.
func (n *InMem) Stats() Stats { return n.stats.snapshot() }

// RecordFailover implements AvailabilityRecorder.
func (n *InMem) RecordFailover(addr string) { n.stats.RecordFailover(addr) }

// RecordShed implements AvailabilityRecorder.
func (n *InMem) RecordShed(addr string) { n.stats.RecordShed(addr) }

// RecordBreakerOpen implements AvailabilityRecorder.
func (n *InMem) RecordBreakerOpen(addr string) { n.stats.RecordBreakerOpen(addr) }

// Close implements Network. It waits for in-flight asynchronous
// deliveries — including everything already accepted onto a receive
// lane — to finish so tests can assert on final state, then stops the
// lane workers. Frames still queued behind a Hold/Cut are dropped (the
// network is going away), as TCP drops its accepted-but-unwritten
// frames at Close.
func (n *InMem) Close() error {
	n.mu.Lock()
	if !n.closed {
		n.closed = true
		close(n.stop) // wake senders blocked on a full queue
	}
	n.handlers = map[string]Handler{}
	n.peers = map[string]*inmemPeer{}
	lanes := n.lanes
	n.lanes = map[string][]chan inmemJob{}
	n.mu.Unlock()
	// Every accepted job did its deliverWG.Add BEFORE enqueueing (under
	// the closed-check), so once Wait returns no sender can still be
	// about to enqueue — closing the lane channels is then safe and
	// retires the workers.
	n.deliverWG.Wait()
	for _, ls := range lanes {
		for _, ch := range ls {
			close(ch)
		}
	}
	return nil
}

type inmemEndpoint struct {
	net  *InMem
	addr string
}

func (e *inmemEndpoint) Addr() string { return e.addr }

func (e *inmemEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	delete(e.net.handlers, e.addr)
	return nil
}
