package transport

// Contract tests for CROSS-ROUND batching (FlowOptions.FlushDelay):
// writers merging everything queued for a destination into one wire
// frame per write. Alongside the merge-enabled variants of the whole
// fault-injection suite (faultImpls "+merge"), these pin the three
// properties the ISSUE's refinement demands:
//
//   1. FlushDelay=0 is byte-identical to the pre-merge transport — one
//      wire frame per accepted Send/SendBatch, legacy encoding intact.
//   2. With delay enabled, a drained backlog is delivered in fewer
//      frames (FramesMerged/MergedMsgsPerFrame observable) with
//      acceptance order intact, and MaxBatchBytes splits oversized
//      batches without reordering.
//   3. Merged delivery ≡ sequential delivery under one seed, faults
//      included; and FIFO survives a reconnect with a partially merged
//      queue.

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"selfserv/internal/message"
)

// TestTCPFlushDelayZeroByteIdentical pins the delay=0 contract: every
// accepted Send is exactly one wire frame whose payload is byte-for-byte
// message.Marshal's legacy encoding, and a SendBatch is one frame equal
// to message.MarshalBatch — nothing merged, nothing rewritten. This is
// the "pre-merge tree" wire behavior, now an executable invariant.
func TestTCPFlushDelayZeroByteIdentical(t *testing.T) {
	n := NewTCP(testFlow(16, QueueBlock)) // FlushDelay stays 0
	defer n.Close()
	peer := newRawPeer(t, "127.0.0.1:0")
	peer.mu.Lock()
	peer.draining = true
	peer.mu.Unlock()

	ctx := context.Background()
	var sent []*message.Message
	for i := 0; i < 5; i++ {
		m := seqMsg(i, 0)
		sent = append(sent, m)
		if err := n.Send(ctx, peer.Addr(), m); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	batch := []*message.Message{seqMsg(5, 0), seqMsg(6, 0), seqMsg(7, 0)}
	if err := n.SendBatch(ctx, peer.Addr(), batch); err != nil {
		t.Fatalf("send batch: %v", err)
	}

	waitFor(t, func() bool {
		peer.mu.Lock()
		defer peer.mu.Unlock()
		return len(peer.got) == 8
	}, "all 8 messages")
	peer.mu.Lock()
	frames := append([][]byte(nil), peer.frames...)
	peer.mu.Unlock()

	if len(frames) != 6 {
		t.Fatalf("wire frames = %d, want 6 (5 sends + 1 batch): delay=0 must never merge", len(frames))
	}
	for i, m := range sent {
		want, err := message.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frames[i], want) {
			t.Fatalf("frame %d differs from the legacy encoding:\n got: %q\nwant: %q", i, frames[i], want)
		}
	}
	wantBatch, err := message.MarshalBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frames[5], wantBatch) {
		t.Fatalf("batch frame differs from MarshalBatch:\n got: %q\nwant: %q", frames[5], wantBatch)
	}
	if st := n.Stats().Nodes[peer.Addr()]; st.FramesMerged != 0 || st.MergedWrites != 0 {
		t.Fatalf("merge stats nonzero at FlushDelay=0: %+v", st)
	}
}

// TestContractCrossRoundMergeCoalescesBacklog pins the merge win on both
// implementations: a backlog accumulated behind a stalled peer drains in
// FEWER wire deliveries than frames accepted, every message still in
// acceptance order, and the merge is visible in the destination's stats
// (FramesMerged > 0, MergedMsgsPerFrame > 1).
func TestContractCrossRoundMergeCoalescesBacklog(t *testing.T) {
	const queueLen = 6
	for _, impl := range faultImpls() {
		if !strings.HasSuffix(impl.name, "+merge") {
			continue
		}
		t.Run(impl.name, func(t *testing.T) {
			n := impl.newNet(testFlow(queueLen, QueueShed))
			defer n.Close()
			peer := impl.newStalled(t, n)
			ctx := context.Background()

			// Fill until the queue sheds WITH the queue at the cap, so the
			// writer is guaranteed a multi-frame backlog to merge.
			var accepted []int
			wedged := false
			for i := 0; i < 300 && !wedged; i++ {
				err := n.Send(ctx, peer.Addr(), seqMsg(i, impl.pad/8))
				switch {
				case err == nil:
					accepted = append(accepted, i)
				case errors.Is(err, ErrQueueFull):
					wedged = n.Stats().Nodes[peer.Addr()].QueueDepth == queueLen
				default:
					t.Fatalf("send %d: %v", i, err)
				}
			}
			if !wedged {
				t.Fatal("peer never wedged at its queue cap")
			}

			got := peer.Drain(t, len(accepted))
			assertSeqs(t, got, accepted)

			st := n.Stats().Nodes[peer.Addr()]
			if st.FramesMerged == 0 {
				t.Fatalf("FramesMerged = 0 after draining a %d-frame backlog; stats = %+v", queueLen, st)
			}
			if mpf := st.MergedMsgsPerFrame(); mpf <= 1 {
				t.Fatalf("MergedMsgsPerFrame = %v, want > 1", mpf)
			}
		})
	}
}

// TestTCPNoReorderAcrossReconnectWithMerge re-runs the reconnect FIFO
// contract with the batcher active: the peer dies mid-stream with a
// PARTIALLY MERGED queue (frames folded into an in-flight batch plus
// frames still queued) and comes back; what arrives is strictly
// increasing with everything accepted after the restore present — a
// merged batch reconnects and retransmits exactly like a single frame.
//
// The cut is phased: the pre-cut prefix is confirmed delivered first,
// and the peer stays down long enough for the dead socket's RST to land
// before it returns. Without app-level acks TCP cannot flag a frame
// that was written INTO the dying socket (true of the unmerged writer
// too); the contract is about what the writer does once the failure is
// observable — resend the failed (possibly merged) frame first, then
// the rest, in order.
func TestTCPNoReorderAcrossReconnectWithMerge(t *testing.T) {
	flow := testFlow(64, QueueBlock)
	flow.FlushDelay = 2 * time.Millisecond
	n := NewTCP(flow)
	defer n.Close()
	peer := newRawPeer(t, "127.0.0.1:0")
	peer.mu.Lock()
	peer.draining = true
	peer.mu.Unlock()

	ctx := context.Background()
	const total = 60
	send := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if err := n.Send(ctx, peer.Addr(), seqMsg(i, 0)); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
	}
	send(0, 20)
	waitFor(t, func() bool {
		peer.mu.Lock()
		defer peer.mu.Unlock()
		return len(peer.got) == 20
	}, "the pre-cut prefix")

	peer.cut()
	send(20, 40) // accepted into the queue; the writer merges and hits the dead socket
	time.Sleep(100 * time.Millisecond)
	peer.restore(t)
	send(40, total) // provably post-restore: must all arrive, in order

	waitFor(t, func() bool {
		peer.mu.Lock()
		defer peer.mu.Unlock()
		return len(peer.got) > 0 && peer.got[len(peer.got)-1].Seq == total-1
	}, "the final frame after reconnect")

	peer.mu.Lock()
	got := append([]*message.Message(nil), peer.got...)
	frames := len(peer.frames)
	peer.mu.Unlock()
	seen := map[int]bool{}
	prev := -1
	for _, m := range got {
		if m.Seq <= prev {
			t.Fatalf("reordered or duplicated delivery: %d after %d", m.Seq, prev)
		}
		prev = m.Seq
		seen[m.Seq] = true
	}
	for i := 40; i < total; i++ {
		if !seen[i] {
			t.Fatalf("frame %d (sent after restore) never arrived", i)
		}
	}
	if frames >= len(got) {
		t.Fatalf("%d wire frames for %d messages: the outage backlog never merged", frames, len(got))
	}
	if r := n.Stats().Nodes[peer.Addr()].Reconnects; r < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", r)
	}
}

// TestInMemMergedEqualsSequentialUnderFaults pins determinism across the
// knob: under ONE seed with drops and a mid-traffic outage, a network
// with FlushDelay enabled delivers exactly the same message stream, in
// the same order, as one without — merging changes frame counts, never
// delivery. (The batched-vs-sequential twin for sender-side batching is
// TestInMemBatchedEqualsSequentialUnderFaults.)
func TestInMemMergedEqualsSequentialUnderFaults(t *testing.T) {
	run := func(flushDelay time.Duration) ([]string, NodeStats) {
		flow := testFlow(64, QueueBlock)
		flow.FlushDelay = flushDelay
		n := NewInMem(InMemOptions{Synchronous: true, DropRate: 0.3, Seed: 424242, Flow: flow})
		defer n.Close()
		var got []string
		ep, err := n.Listen("peer", func(_ context.Context, m *message.Message) {
			got = append(got, m.Vars["v"])
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		send := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				m := &message.Message{Type: message.TypeNotify, Vars: map[string]string{"v": strconv.Itoa(i)}}
				if err := n.Send(ctx, ep.Addr(), m); err != nil {
					t.Fatal(err)
				}
			}
		}
		send(0, 10)
		n.Cut(ep.Addr())
		send(10, 25) // queued: the cross-round backlog the drain merges
		n.Restore(ep.Addr())
		send(25, 30)
		return got, n.Stats().Nodes[ep.Addr()]
	}

	seq, seqStats := run(0)
	mer, merStats := run(2 * time.Millisecond)
	if len(seq) != len(mer) {
		t.Fatalf("unmerged delivered %d, merged %d — the knob changed delivery", len(seq), len(mer))
	}
	for i := range seq {
		if seq[i] != mer[i] {
			t.Fatalf("delivery %d: unmerged %q, merged %q", i, seq[i], mer[i])
		}
	}
	if len(seq) == 30 || len(seq) == 0 {
		t.Fatalf("want a partial loss under DropRate=0.3, delivered %d/30", len(seq))
	}
	if seqStats.FramesMerged != 0 {
		t.Fatalf("unmerged run recorded FramesMerged = %d", seqStats.FramesMerged)
	}
	if merStats.FramesMerged == 0 {
		t.Fatal("merged run recorded no FramesMerged despite a 15-frame outage backlog")
	}
}

// TestInMemMergeNeverCrossesReregistration pins that the drain's merge
// respects handler identity: frames accepted for an endpoint
// registration are delivered to THAT registration's handler even when a
// re-Listen happens mid-stall — the batcher splits rather than handing
// a newer frame to the stale handler (merged ≡ sequential across
// Listen churn).
func TestInMemMergeNeverCrossesReregistration(t *testing.T) {
	flow := testFlow(16, QueueBlock)
	flow.FlushDelay = time.Millisecond
	n := NewInMem(InMemOptions{Synchronous: true, Flow: flow})
	defer n.Close()

	var oldGot, newGot []int
	ep, err := n.Listen("peer", func(_ context.Context, m *message.Message) { oldGot = append(oldGot, m.Seq) })
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n.Hold("peer")
	for i := 0; i < 2; i++ {
		if err := n.Send(ctx, "peer", seqMsg(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	ep.Close()
	if _, err := n.Listen("peer", func(_ context.Context, m *message.Message) { newGot = append(newGot, m.Seq) }); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if err := n.Send(ctx, "peer", seqMsg(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	n.Release("peer")

	if want := []int{0, 1}; len(oldGot) != 2 || oldGot[0] != 0 || oldGot[1] != 1 {
		t.Fatalf("old handler got %v, want %v", oldGot, want)
	}
	if want := []int{2, 3}; len(newGot) != 2 || newGot[0] != 2 || newGot[1] != 3 {
		t.Fatalf("new handler got %v, want %v (a merged batch crossed the re-registration)", newGot, want)
	}
}

// TestInMemMaxBatchBytesSplitsBatches pins the byte cap deterministically:
// a drained backlog whose frames fit two-per-cap yields exactly
// ceil(n/2) deliveries, order preserved, stats counting each split batch.
func TestInMemMaxBatchBytesSplitsBatches(t *testing.T) {
	probe, err := message.Marshal(seqMsg(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	flow := testFlow(16, QueueBlock)
	flow.FlushDelay = time.Millisecond
	flow.MaxBatchBytes = 2*len(probe) + len(probe)/2 // two fit, three don't
	n := NewInMem(InMemOptions{Synchronous: true, Flow: flow})
	defer n.Close()

	var got []*message.Message
	ep, err := n.Listen("peer", func(_ context.Context, m *message.Message) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n.Hold(ep.Addr())
	want := make([]int, 6)
	for i := 0; i < 6; i++ {
		if err := n.Send(ctx, ep.Addr(), seqMsg(i, 64)); err != nil {
			t.Fatal(err)
		}
		want[i] = i
	}
	n.Release(ep.Addr())

	assertSeqs(t, got, want)
	st := n.Stats().Nodes[ep.Addr()]
	if st.MergedWrites != 3 {
		t.Fatalf("MergedWrites = %d, want 3 (six frames, two per byte cap)", st.MergedWrites)
	}
	if st.FramesMerged != 3 {
		t.Fatalf("FramesMerged = %d, want 3", st.FramesMerged)
	}
	if mpf := st.MergedMsgsPerFrame(); mpf != 2 {
		t.Fatalf("MergedMsgsPerFrame = %v, want exactly 2", mpf)
	}
}
