package transport

import (
	"context"
	"encoding/binary"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"selfserv/internal/message"
)

// TestTCPCorruptLengthPrefixDropsConnection: a frame announcing an absurd
// length must close that connection without affecting the listener.
func TestTCPCorruptLengthPrefixDropsConnection(t *testing.T) {
	tn := NewTCP()
	defer tn.Close()
	var count atomic.Int64
	ep, err := tn.Listen("127.0.0.1:0", func(context.Context, *message.Message) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}

	// Raw connection sending a corrupt prefix.
	conn, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var evil [4]byte
	binary.BigEndian.PutUint32(evil[:], 1<<31)
	if _, err := conn.Write(evil[:]); err != nil {
		t.Fatal(err)
	}
	// The endpoint should close the connection; a subsequent read hits EOF.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection not closed after corrupt frame")
	}
	conn.Close()

	// The listener still serves well-formed traffic.
	if err := tn.Send(context.Background(), ep.Addr(), &message.Message{Type: message.TypeNotify}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return count.Load() == 1 }, "post-corruption delivery")
}

// TestTCPMalformedDocumentSkipped: a well-framed but non-XML payload is
// skipped while the connection stays usable.
func TestTCPMalformedDocumentSkipped(t *testing.T) {
	tn := NewTCP()
	defer tn.Close()
	var count atomic.Int64
	ep, err := tn.Listen("127.0.0.1:0", func(context.Context, *message.Message) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	writeFrame := func(payload []byte) {
		t.Helper()
		var prefix [4]byte
		binary.BigEndian.PutUint32(prefix[:], uint32(len(payload)))
		if _, err := conn.Write(append(prefix[:], payload...)); err != nil {
			t.Fatal(err)
		}
	}
	writeFrame([]byte("this is not xml"))
	good, err := message.Marshal(&message.Message{Type: message.TypeNotify})
	if err != nil {
		t.Fatal(err)
	}
	writeFrame(good)
	waitFor(t, func() bool { return count.Load() == 1 }, "good frame after bad one")
}

// TestTCPZeroLengthFrameDropsConnection: zero-length frames are invalid.
func TestTCPZeroLengthFrameDropsConnection(t *testing.T) {
	tn := NewTCP()
	defer tn.Close()
	ep, err := tn.Listen("127.0.0.1:0", func(context.Context, *message.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection survived zero-length frame")
	}
}
