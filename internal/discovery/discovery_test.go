package discovery

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"selfserv/internal/service"
	"selfserv/internal/uddi"
)

// testbed spins up a registry server plus SOAP/WSDL endpoints for the
// given providers and returns a ready engine.
type testbed struct {
	engine    *Engine
	endpoints map[string]string // provider -> SOAP URL
	wsdlURLs  map[string]string
}

func newTestbed(t *testing.T, providers ...service.Provider) *testbed {
	t.Helper()
	reg := uddi.NewRegistry()
	mux := uddi.Serve(reg, nil)
	tb := &testbed{endpoints: map[string]string{}, wsdlURLs: map[string]string{}}

	for _, p := range providers {
		p := p
		soapPath := "/soap/" + p.Name()
		mux.Handle(soapPath, ServiceEndpoint(p))
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	// WSDL endpoints need the final URL, so mount them after the server
	// exists (the mux accepts late registrations).
	for _, p := range providers {
		soapURL := ts.URL + "/soap/" + p.Name()
		tb.endpoints[p.Name()] = soapURL
		wsdlPath := "/wsdl/" + p.Name()
		h, err := WSDLEndpoint(p, soapURL)
		if err != nil {
			t.Fatalf("WSDLEndpoint(%s): %v", p.Name(), err)
		}
		mux.Handle(wsdlPath, h)
		tb.wsdlURLs[p.Name()] = ts.URL + wsdlPath
	}
	tb.engine = NewEngine(ts.URL + "/uddi")
	return tb
}

func (tb *testbed) register(t *testing.T, providerName, svcName, iface string) *Registration {
	t.Helper()
	reg, err := tb.engine.Register(Publication{
		ProviderName:    providerName,
		ServiceName:     svcName,
		Endpoint:        tb.endpoints[svcName],
		WSDLURL:         tb.wsdlURLs[svcName],
		InterfaceTModel: iface,
	})
	if err != nil {
		t.Fatalf("Register(%s): %v", svcName, err)
	}
	return reg
}

func TestRegisterLocateInvoke(t *testing.T) {
	dfb := service.NewDomesticFlightBooking(service.SimulatedOptions{})
	tb := newTestbed(t, dfb)
	reg := tb.register(t, "QF Airlines", "DomesticFlightBooking", "FlightBooking-interface")
	if reg.ServiceKey == "" || reg.BusinessKey == "" {
		t.Fatalf("registration = %+v", reg)
	}

	// Locate by name prefix (the Search panel flow).
	hits, err := tb.engine.Locate(uddi.ServiceQuery{NamePattern: "Domestic"})
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %+v", hits)
	}
	loc := hits[0]
	if loc.Provider.Name != "QF Airlines" {
		t.Errorf("provider = %q", loc.Provider.Name)
	}
	if loc.Definition == nil || loc.Definition.Operation("book") == nil {
		t.Fatalf("WSDL not resolved: %+v", loc.Definition)
	}

	// Invoke through the WSDL binding (the Execute flow).
	out, err := tb.engine.Invoke(context.Background(), &loc, "book", map[string]string{
		"customer": "alice", "dest": "sydney",
	})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if out["ref"] != "QF-ALI-SYD" {
		t.Fatalf("ref = %q", out["ref"])
	}

	// Unknown operation is rejected against the WSDL before the call.
	if _, err := tb.engine.Invoke(context.Background(), &loc, "teleport", nil); err == nil ||
		!strings.Contains(err.Error(), "no operation") {
		t.Fatalf("unknown op err = %v", err)
	}
}

func TestRegisterReusesBusiness(t *testing.T) {
	dfb := service.NewDomesticFlightBooking(service.SimulatedOptions{})
	ita := service.NewInternationalTravel(service.SimulatedOptions{})
	tb := newTestbed(t, dfb, ita)
	r1 := tb.register(t, "QF Airlines", "DomesticFlightBooking", "")
	r2 := tb.register(t, "QF Airlines", "InternationalTravel", "")
	if r1.BusinessKey != r2.BusinessKey {
		t.Fatalf("same provider got two business keys: %q vs %q", r1.BusinessKey, r2.BusinessKey)
	}
}

func TestLocateByInterfaceTModel(t *testing.T) {
	// Two alternative providers of the same interface: the discovery path
	// a community uses to find members.
	h1 := service.NewAccommodationBooking("GrandHotel", service.SimulatedOptions{})
	h2 := service.NewAccommodationBooking("CityLodge", service.SimulatedOptions{})
	tb := newTestbed(t, h1, h2)
	tb.register(t, "Grand Group", "GrandHotel", "AccommodationBooking-interface")
	tb.register(t, "Lodge Corp", "CityLodge", "AccommodationBooking-interface")

	// Find both members through the interface fingerprint.
	all, err := tb.engine.UDDI.FindBusiness("", uddi.MatchPrefix)
	if err != nil || len(all) != 2 {
		t.Fatalf("businesses = %v, %v", all, err)
	}
	tms, err := tb.engine.UDDI.FindTModel("AccommodationBooking-interface", uddi.MatchExact)
	if err != nil || len(tms) == 0 {
		t.Fatalf("FindTModel = %v, %v", tms, err)
	}
	tmHits, err := tb.engine.UDDI.FindService(uddi.ServiceQuery{TModelKey: tms[0].TModelKey})
	if err != nil {
		t.Fatal(err)
	}
	if len(tmHits) != 2 {
		t.Fatalf("interface members = %+v", tmHits)
	}
}

func copyBody(dst *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 32*1024)
	var n int64
	for {
		m, err := resp.Body.Read(buf)
		dst.Write(buf[:m])
		n += int64(m)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, nil
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	tb := newTestbed(t)
	if _, err := tb.engine.Register(Publication{ServiceName: "x", Endpoint: "http://x"}); err == nil {
		t.Error("registration without provider accepted")
	}
	if _, err := tb.engine.Register(Publication{ProviderName: "p", ServiceName: "x"}); err == nil {
		t.Error("registration without endpoint accepted")
	}
}

func TestLocateOneMiss(t *testing.T) {
	tb := newTestbed(t)
	if _, err := tb.engine.LocateOne("Ghost"); err == nil {
		t.Fatal("LocateOne found a ghost")
	}
}

func TestInvokeServiceFaultSurfaces(t *testing.T) {
	dfb := service.NewDomesticFlightBooking(service.SimulatedOptions{})
	tb := newTestbed(t, dfb)
	tb.register(t, "QF", "DomesticFlightBooking", "")
	loc, err := tb.engine.LocateOne("DomesticFlightBooking")
	if err != nil {
		t.Fatal(err)
	}
	// tokyo is not domestic: the provider returns an error that must
	// surface as a SOAP fault.
	_, err = tb.engine.Invoke(context.Background(), loc, "book", map[string]string{
		"customer": "alice", "dest": "tokyo",
	})
	if err == nil || !strings.Contains(err.Error(), "no domestic route") {
		t.Fatalf("err = %v", err)
	}
}

func TestWSDLEndpointServesDocument(t *testing.T) {
	dfb := service.NewDomesticFlightBooking(service.SimulatedOptions{})
	h, err := WSDLEndpoint(dfb, "http://example/soap")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	copyBody(&sb, resp)
	if !strings.Contains(sb.String(), "definitions") || !strings.Contains(sb.String(), "book") {
		t.Fatalf("wsdl = %s", sb.String())
	}
}
