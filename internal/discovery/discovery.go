// Package discovery implements the Service Discovery Engine of the
// SELF-SERV service manager: it "facilitates the advertisement and
// location of services" and is "implemented using UDDI, WSDL and SOAP".
//
// The engine offers the three flows of the paper's Figure 3:
//
//   - Register: expose a provider as a SOAP endpoint, generate and host
//     its WSDL description at a public URL, and publish business +
//     service + binding records in the UDDI registry.
//   - Locate: search the registry by provider, service name, or
//     interface tModel and resolve the WSDL binding details.
//   - Invoke: execute an operation of a located service by sending the
//     input document to the endpoint from its WSDL binding.
package discovery

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"selfserv/internal/service"
	"selfserv/internal/soap"
	"selfserv/internal/uddi"
	"selfserv/internal/wsdl"
)

// Engine is a discovery engine bound to one UDDI registry endpoint.
type Engine struct {
	// UDDI is the registry client.
	UDDI *uddi.Client
	// HTTPClient is used for WSDL fetches and SOAP invocations; defaults
	// to http.DefaultClient.
	HTTPClient *http.Client

	mu    sync.Mutex
	wsdls map[string]*wsdl.Definition // cache by URL
}

// NewEngine returns an engine talking to the registry at registryURL
// (the /uddi SOAP endpoint).
func NewEngine(registryURL string) *Engine {
	return &Engine{
		UDDI:  &uddi.Client{URL: registryURL},
		wsdls: map[string]*wsdl.Definition{},
	}
}

// Registration describes one published service.
type Registration struct {
	BusinessKey string
	ServiceKey  string
	BindingKey  string
	WSDLURL     string
	Endpoint    string
}

// Publication is the input to Register.
type Publication struct {
	// Provider/business details (the Publish panel's fields).
	ProviderName string
	Contact      string
	// ServiceName defaults to the provider name of the endpoint's
	// service.
	ServiceName string
	Description string
	// Endpoint is the service's SOAP access point URL.
	Endpoint string
	// WSDLURL is the public URL of the service's WSDL description.
	WSDLURL string
	// InterfaceTModel optionally tags the service with an interface
	// fingerprint so communities can find alternative members.
	InterfaceTModel string
}

// Register publishes a service per the paper's Publish flow. It finds or
// creates the business entity, saves the service and its binding, and
// optionally tags the interface tModel.
func (e *Engine) Register(pub Publication) (*Registration, error) {
	if pub.ProviderName == "" || pub.ServiceName == "" {
		return nil, fmt.Errorf("discovery: registration needs provider and service names")
	}
	if pub.Endpoint == "" {
		return nil, fmt.Errorf("discovery: registration needs an endpoint")
	}
	// Reuse an existing business with the exact name, otherwise create.
	var businessKey string
	existing, err := e.UDDI.FindBusiness(pub.ProviderName, uddi.MatchExact)
	if err != nil {
		return nil, err
	}
	if len(existing) > 0 {
		businessKey = existing[0].BusinessKey
	} else {
		b, err := e.UDDI.SaveBusiness(uddi.BusinessEntity{
			Name:    pub.ProviderName,
			Contact: pub.Contact,
		})
		if err != nil {
			return nil, err
		}
		businessKey = b.BusinessKey
	}
	svc, err := e.UDDI.SaveService(uddi.BusinessService{
		BusinessKey: businessKey,
		Name:        pub.ServiceName,
		Description: pub.Description,
	})
	if err != nil {
		return nil, err
	}
	bnd, err := e.UDDI.SaveBinding(uddi.BindingTemplate{
		ServiceKey:  svc.ServiceKey,
		AccessPoint: pub.Endpoint,
		WSDLURL:     pub.WSDLURL,
	})
	if err != nil {
		return nil, err
	}
	if pub.InterfaceTModel != "" {
		// Find-or-create: alternative providers of one interface must share
		// the same tModel so communities can enumerate them.
		var key string
		existing, err := e.UDDI.FindTModel(pub.InterfaceTModel, uddi.MatchExact)
		if err != nil {
			return nil, err
		}
		if len(existing) > 0 {
			key = existing[0].TModelKey
		} else {
			tm, err := e.UDDI.SaveTModel(uddi.TModel{Name: pub.InterfaceTModel})
			if err != nil {
				return nil, err
			}
			key = tm.TModelKey
		}
		if err := e.UDDI.TagService(svc.ServiceKey, key); err != nil {
			return nil, err
		}
	}
	return &Registration{
		BusinessKey: businessKey,
		ServiceKey:  svc.ServiceKey,
		BindingKey:  bnd.BindingKey,
		WSDLURL:     pub.WSDLURL,
		Endpoint:    pub.Endpoint,
	}, nil
}

// Located is one search hit with resolved binding details.
type Located struct {
	Service  uddi.BusinessService
	Provider uddi.BusinessEntity
	Endpoint string
	WSDLURL  string
	// Definition is the fetched WSDL description, nil when no WSDL URL
	// was published.
	Definition *wsdl.Definition
}

// Locate searches the registry per the Search panel (by service name
// pattern, provider, or interface) and resolves each hit's bindings and
// WSDL. Hits without bindings are skipped: they cannot be invoked.
func (e *Engine) Locate(q uddi.ServiceQuery) ([]Located, error) {
	hits, err := e.UDDI.FindService(q)
	if err != nil {
		return nil, err
	}
	var out []Located
	for _, hit := range hits {
		detail, err := e.UDDI.GetServiceDetail(hit.ServiceKey)
		if err != nil {
			return nil, err
		}
		provider, err := e.UDDI.GetBusinessDetail(detail.BusinessKey)
		if err != nil {
			return nil, err
		}
		bindings, err := e.UDDI.GetBindings(hit.ServiceKey)
		if err != nil {
			return nil, err
		}
		if len(bindings) == 0 {
			continue
		}
		loc := Located{
			Service:  detail,
			Provider: provider,
			Endpoint: bindings[0].AccessPoint,
			WSDLURL:  bindings[0].WSDLURL,
		}
		if loc.WSDLURL != "" {
			def, err := e.fetchWSDL(loc.WSDLURL)
			if err != nil {
				return nil, fmt.Errorf("discovery: service %q: %w", detail.Name, err)
			}
			loc.Definition = def
		}
		out = append(out, loc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service.Name < out[j].Service.Name })
	return out, nil
}

// LocateOne returns the single exact-name match for a service.
func (e *Engine) LocateOne(name string) (*Located, error) {
	hits, err := e.Locate(uddi.ServiceQuery{NamePattern: name, Qualifier: uddi.MatchExact})
	if err != nil {
		return nil, err
	}
	if len(hits) == 0 {
		return nil, fmt.Errorf("discovery: service %q not found", name)
	}
	return &hits[0], nil
}

// Invoke executes operation op of a located service with the given
// parameters, using the binding details from its WSDL (falling back to
// the UDDI access point when no WSDL was published).
func (e *Engine) Invoke(ctx context.Context, loc *Located, op string, params map[string]string) (map[string]string, error) {
	endpoint := loc.Endpoint
	if loc.Definition != nil {
		if loc.Definition.Operation(op) == nil {
			return nil, fmt.Errorf("discovery: service %q has no operation %q (WSDL)", loc.Service.Name, op)
		}
		if loc.Definition.Endpoint != "" {
			endpoint = loc.Definition.Endpoint
		}
	}
	client := e.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := soap.Call(client, endpoint, &soap.Message{Action: op, Params: params})
	if err != nil {
		return nil, fmt.Errorf("discovery: invoke %s.%s: %w", loc.Service.Name, op, err)
	}
	return resp.Params, nil
}

// fetchWSDL downloads and caches a WSDL description.
func (e *Engine) fetchWSDL(url string) (*wsdl.Definition, error) {
	e.mu.Lock()
	if def, ok := e.wsdls[url]; ok {
		e.mu.Unlock()
		return def, nil
	}
	e.mu.Unlock()
	client := e.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("discovery: fetch WSDL %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("discovery: fetch WSDL %s: HTTP %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, fmt.Errorf("discovery: read WSDL %s: %w", url, err)
	}
	def, err := wsdl.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.wsdls[url] = def
	e.mu.Unlock()
	return def, nil
}

// ServiceEndpoint exposes a provider as a SOAP endpoint: one action per
// operation. Mount it on an HTTP route to make the provider
// "Web-accessible".
func ServiceEndpoint(p service.Provider) http.Handler {
	srv := soap.NewServer()
	for _, op := range p.Operations() {
		op := op
		srv.Handle(op, func(params map[string]string) (map[string]string, error) {
			resp, err := p.Invoke(context.Background(), service.Request{
				Service:   p.Name(),
				Operation: op,
				Params:    params,
			})
			if err != nil {
				return nil, err
			}
			return resp.Outputs, nil
		})
	}
	return srv
}

// WSDLEndpoint serves the provider's generated WSDL description; mount
// it at the URL published in the registry ("placing the WSDL
// descriptions so that they can be retrieved using public URLs").
func WSDLEndpoint(p service.Provider, soapEndpoint string) (http.Handler, error) {
	def := wsdl.FromProvider(p, soapEndpoint)
	data, err := wsdl.Marshal(def)
	if err != nil {
		return nil, err
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		w.Write(data)
	}), nil
}
