package community

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"selfserv/internal/service"
)

func hotel(name string, opts service.SimulatedOptions) *service.Simulated {
	return service.NewAccommodationBooking(name, opts)
}

func member(name string, cost float64, opts service.SimulatedOptions) *Member {
	return &Member{Provider: hotel(name, opts), Cost: cost}
}

func TestJoinLeaveMembers(t *testing.T) {
	c := New("AccommodationBooking", Options{})
	if err := c.Join(member("HotelA", 1, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(member("HotelB", 2, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	got := c.Members()
	if len(got) != 2 || got[0] != "HotelA" || got[1] != "HotelB" {
		t.Fatalf("Members = %v", got)
	}
	c.Leave("HotelA")
	if got := c.Members(); len(got) != 1 || got[0] != "HotelB" {
		t.Fatalf("Members after Leave = %v", got)
	}
	if err := c.Join(nil); err == nil {
		t.Fatal("Join(nil) succeeded")
	}
	if err := c.Join(&Member{Provider: hotel("X", service.SimulatedOptions{}), Predicate: "((("}); err == nil {
		t.Fatal("Join with bad predicate succeeded")
	}
}

func TestInvokeDelegates(t *testing.T) {
	c := New("AccommodationBooking", Options{})
	if err := c.Join(member("HotelA", 1, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Invoke(context.Background(), service.Request{
		Service: "AccommodationBooking", Operation: "book",
		Params: map[string]string{"customer": "alice", "dest": "sydney"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outputs["addr"] != "HotelA sydney" {
		t.Fatalf("addr = %q", resp.Outputs["addr"])
	}
	// Provider interface conformance.
	var _ service.Provider = c
	if c.Name() != "AccommodationBooking" {
		t.Fatal("Name wrong")
	}
	if ops := c.Operations(); len(ops) != 1 || ops[0] != "book" {
		t.Fatalf("Operations = %v", ops)
	}
}

func TestNoMember(t *testing.T) {
	c := New("Empty", Options{})
	_, err := c.Invoke(context.Background(), service.Request{Operation: "book"})
	if !errors.Is(err, ErrNoMember) {
		t.Fatalf("err = %v", err)
	}
}

func TestPredicateFiltering(t *testing.T) {
	c := New("AccommodationBooking", Options{})
	sydney := member("SydneyHotel", 1, service.SimulatedOptions{})
	sydney.Attributes = map[string]string{"city": "sydney"}
	sydney.Predicate = "city = req.dest"
	tokyo := member("TokyoHotel", 1, service.SimulatedOptions{})
	tokyo.Attributes = map[string]string{"city": "tokyo"}
	tokyo.Predicate = "city = req.dest"
	if err := c.Join(sydney); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(tokyo); err != nil {
		t.Fatal(err)
	}
	for dest, wantAddr := range map[string]string{
		"sydney": "SydneyHotel sydney",
		"tokyo":  "TokyoHotel tokyo",
	} {
		resp, err := c.Invoke(context.Background(), service.Request{
			Operation: "book",
			Params:    map[string]string{"customer": "x", "dest": dest},
		})
		if err != nil {
			t.Fatalf("dest %s: %v", dest, err)
		}
		if resp.Outputs["addr"] != wantAddr {
			t.Fatalf("dest %s addr = %q", dest, resp.Outputs["addr"])
		}
	}
	// No member matches.
	_, err := c.Invoke(context.Background(), service.Request{
		Operation: "book", Params: map[string]string{"dest": "mars"},
	})
	if !errors.Is(err, ErrNoMember) {
		t.Fatalf("mars err = %v", err)
	}
}

func TestRoundRobinRotation(t *testing.T) {
	c := New("C", Options{Policy: NewRoundRobin()})
	for _, n := range []string{"A", "B", "C3"} {
		if err := c.Join(member(n, 1, service.SimulatedOptions{})); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		resp, err := c.Invoke(context.Background(), service.Request{
			Operation: "book", Params: map[string]string{"dest": "d"},
		})
		if err != nil {
			t.Fatal(err)
		}
		brand := strings.Fields(resp.Outputs["addr"])[0]
		seen[brand]++
	}
	for _, n := range []string{"A", "B", "C3"} {
		if seen[n] != 3 {
			t.Fatalf("round-robin distribution = %v", seen)
		}
	}
}

func TestRandomPolicyCoversMembers(t *testing.T) {
	c := New("C", Options{Policy: NewRandom(5)})
	for _, n := range []string{"A", "B"} {
		if err := c.Join(member(n, 1, service.SimulatedOptions{})); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		resp, err := c.Invoke(context.Background(), service.Request{
			Operation: "book", Params: map[string]string{"dest": "d"},
		})
		if err != nil {
			t.Fatal(err)
		}
		seen[strings.Fields(resp.Outputs["addr"])[0]] = true
	}
	if !seen["A"] || !seen["B"] {
		t.Fatalf("random policy never chose some member: %v", seen)
	}
}

func TestQoSPolicyAvoidsSlowMember(t *testing.T) {
	c := New("C", Options{Policy: NewQoS(Weights{})})
	fast := member("Fast", 1, service.SimulatedOptions{BaseLatency: time.Millisecond})
	slow := member("Slow", 1, service.SimulatedOptions{BaseLatency: 60 * time.Millisecond})
	if err := c.Join(fast); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(slow); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		resp, err := c.Invoke(context.Background(), service.Request{
			Operation: "book", Params: map[string]string{"dest": "d"},
		})
		if err != nil {
			t.Fatal(err)
		}
		counts[strings.Fields(resp.Outputs["addr"])[0]]++
	}
	// Fresh members tie (optimistic start, Fast wins by name order); after
	// the first samples the fast member must dominate.
	if counts["Fast"] < 25 {
		t.Fatalf("qos policy counts = %v, want Fast to dominate", counts)
	}
}

func TestQoSPolicyAvoidsUnreliableMember(t *testing.T) {
	c := New("C", Options{Policy: NewQoS(Weights{}), Failover: 1})
	good := member("Good", 1, service.SimulatedOptions{})
	flaky := member("Flaky", 1, service.SimulatedOptions{FailRate: 0.9, Seed: 3})
	if err := c.Join(flaky); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(good); err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 40; i++ {
		if _, err := c.Invoke(context.Background(), service.Request{
			Operation: "book", Params: map[string]string{"dest": "d"},
		}); err != nil {
			failures++
		}
	}
	if failures > 3 {
		t.Fatalf("%d failures; qos policy with failover should route around the flaky member", failures)
	}
	// History must show the flaky member as unreliable.
	if rel := c.History().Snapshot("Flaky").Reliability; rel > 0.6 {
		t.Fatalf("Flaky reliability = %v, want low", rel)
	}
}

func TestCheapestPolicy(t *testing.T) {
	c := New("C", Options{Policy: NewCheapest()})
	if err := c.Join(member("Pricey", 9, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(member("Budget", 1, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Invoke(context.Background(), service.Request{
		Operation: "book", Params: map[string]string{"dest": "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Outputs["addr"], "Budget") {
		t.Fatalf("addr = %q", resp.Outputs["addr"])
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	c := New("C", Options{Policy: NewLeastLoaded()})
	slowA := member("A", 1, service.SimulatedOptions{BaseLatency: 100 * time.Millisecond})
	b := member("B", 1, service.SimulatedOptions{})
	if err := c.Join(slowA); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(b); err != nil {
		t.Fatal(err)
	}
	// Occupy A, then the next request must go to B.
	c.History().Begin("A")
	defer c.History().End("A", 0, true)
	resp, err := c.Invoke(context.Background(), service.Request{
		Operation: "book", Params: map[string]string{"dest": "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Outputs["addr"], "B") {
		t.Fatalf("addr = %q, want B (least loaded)", resp.Outputs["addr"])
	}
}

func TestFailoverRetriesNextMember(t *testing.T) {
	// Policy always prefers "Broken" (cheapest); failover must rescue the
	// request via "Backup".
	c := New("C", Options{Policy: NewCheapest(), Failover: 2})
	broken := &Member{Provider: service.NewSimulated("Broken", service.SimulatedOptions{FailRate: 0.999999, Seed: 2}).Handle(
		"book", func(context.Context, map[string]string) (map[string]string, error) {
			return map[string]string{"addr": "Broken x"}, nil
		}), Cost: 1}
	backup := member("Backup", 5, service.SimulatedOptions{})
	if err := c.Join(broken); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(backup); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Invoke(context.Background(), service.Request{
		Operation: "book", Params: map[string]string{"dest": "d"},
	})
	if err != nil {
		t.Fatalf("failover did not rescue: %v", err)
	}
	if !strings.HasPrefix(resp.Outputs["addr"], "Backup") {
		t.Fatalf("addr = %q", resp.Outputs["addr"])
	}
}

func TestNoFailoverSingleDelegation(t *testing.T) {
	c := New("C", Options{Policy: NewCheapest()}) // Failover: 0
	broken := &Member{Provider: service.NewSimulated("Broken", service.SimulatedOptions{FailRate: 0.999999, Seed: 2}).Echo("book"), Cost: 1}
	backup := member("Backup", 5, service.SimulatedOptions{})
	if err := c.Join(broken); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(backup); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), service.Request{
		Operation: "book", Params: map[string]string{"dest": "d"},
	}); err == nil {
		t.Fatal("single delegation should surface the member failure")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"random", "round-robin", "least-loaded", "qos", "cheapest"} {
		p, err := PolicyByName(name, 1)
		if err != nil || p.Name() != name {
			t.Fatalf("PolicyByName(%s) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("nope", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestHistoryRecordsDelegations(t *testing.T) {
	c := New("C", Options{})
	if err := c.Join(member("A", 1, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Invoke(context.Background(), service.Request{
			Operation: "book", Params: map[string]string{"dest": "d"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	m := c.History().Snapshot("A")
	if m.Executions != 5 || m.Load != 0 {
		t.Fatalf("history = %+v", m)
	}
}

func TestDynamicMembershipDuringTraffic(t *testing.T) {
	c := New("C", Options{})
	if err := c.Join(member("A", 1, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_, _ = c.Invoke(context.Background(), service.Request{
				Operation: "book", Params: map[string]string{"dest": "d"},
			})
		}
	}()
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("M%d", i)
		if err := c.Join(member(name, 1, service.SimulatedOptions{})); err != nil {
			t.Fatal(err)
		}
		c.Leave(name)
	}
	<-done
}

func BenchmarkCommunityInvoke(b *testing.B) {
	for _, policy := range []Policy{NewRandom(1), NewRoundRobin(), NewQoS(Weights{}), NewLeastLoaded()} {
		b.Run(policy.Name(), func(b *testing.B) {
			c := New("C", Options{Policy: policy})
			for i := 0; i < 8; i++ {
				if err := c.Join(member(fmt.Sprintf("M%d", i), float64(i), service.SimulatedOptions{})); err != nil {
					b.Fatal(err)
				}
			}
			req := service.Request{Operation: "book", Params: map[string]string{"dest": "d"}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Invoke(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
