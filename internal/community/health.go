package community

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"selfserv/internal/qos"
)

// Prober is the optional health-probe contract a member provider may
// implement (service.Simulated does): a cheap liveness check that does
// NOT execute an operation. Providers without it are probed optimistically
// — a recovery probe succeeds, and real invocations re-darken them if
// they are still broken.
type Prober interface {
	Probe(ctx context.Context) error
}

// HealthOptions configure a community's active health checker.
type HealthOptions struct {
	// Interval is the base period between probe rounds for the background
	// loop started by StartHealthChecks. Zero disables the loop (the
	// state machine still runs on invocation outcomes, and tests drive
	// probes deterministically via ProbeAll).
	Interval time.Duration
	// Jitter adds a uniformly random extra in [0, Jitter) to each wait,
	// de-synchronising probe rounds across hosts.
	Jitter time.Duration
	// Seed makes the jitter sequence reproducible; zero uses a fixed
	// default.
	Seed int64
	// SuspectAfter is the consecutive-failure streak that turns a member
	// suspect (default 1).
	SuspectAfter int
	// DarkAfter is the consecutive-failure streak that turns a member
	// dark, excluding it from selection until a probe succeeds
	// (default 3).
	DarkAfter int
	// ProbeTimeout bounds each probe (default 1s).
	ProbeTimeout time.Duration
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 1
	}
	if o.DarkAfter <= 0 {
		o.DarkAfter = 3
	}
	if o.DarkAfter < o.SuspectAfter {
		o.DarkAfter = o.SuspectAfter
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// checker owns the per-member health state machine:
//
//	healthy → suspect   (SuspectAfter consecutive failures)
//	suspect → dark      (DarkAfter consecutive failures; member leaves
//	                     the selectable set)
//	dark    → probing   (a recovery probe is in flight)
//	probing → healthy   (probe succeeded; reliability reset TOWARD the
//	                     prior — see qos.ResetToPrior — never to 1)
//	probing → dark      (probe failed)
//
// Invocation outcomes and active probes both feed the streak; a single
// success heals suspicion. State lives in the community's qos.History so
// selection policies and monitoring see it without another lookup.
type checker struct {
	c    *Community
	opts HealthOptions

	probes     atomic.Int64
	recoveries atomic.Int64

	mu     sync.Mutex
	rng    *rand.Rand
	streak map[string]int
	stop   chan struct{}
	done   chan struct{}
}

func newChecker(c *Community, opts HealthOptions) *checker {
	opts = opts.withDefaults()
	return &checker{
		c:      c,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		streak: map[string]int{},
	}
}

// observe feeds one invocation (or probe) outcome into the state machine.
func (k *checker) observe(member string, ok bool) {
	hist := k.c.history
	k.mu.Lock()
	defer k.mu.Unlock()
	if ok {
		k.streak[member] = 0
		if hist.Health(member) == qos.Suspect {
			hist.SetHealth(member, qos.Healthy)
		}
		return
	}
	k.streak[member]++
	switch s := k.streak[member]; {
	case s >= k.opts.DarkAfter:
		hist.SetHealth(member, qos.Dark)
	case s >= k.opts.SuspectAfter:
		if hist.Health(member) == qos.Healthy {
			hist.SetHealth(member, qos.Suspect)
		}
	}
}

// probe runs one health probe against the named member and applies the
// verdict. Dark members transit through probing and, on success, recover
// with their reliability reset toward the prior.
func (k *checker) probe(ctx context.Context, m *Member) {
	name := m.Name()
	hist := k.c.history
	k.probes.Add(1)

	wasDark := false
	k.mu.Lock()
	if h := hist.Health(name); h == qos.Dark {
		wasDark = true
		hist.SetHealth(name, qos.Probing)
	} else if h == qos.Probing {
		k.mu.Unlock()
		return // a probe is already in flight
	}
	k.mu.Unlock()

	err := k.runProbe(ctx, m)

	k.mu.Lock()
	defer k.mu.Unlock()
	if err == nil {
		k.streak[name] = 0
		if wasDark {
			// Recovery: selectable again, but trust restarts at the prior —
			// flapping must never reap the optimistic start (see
			// qos.ResetToPrior).
			hist.ResetToPrior(name)
			k.recoveries.Add(1)
		}
		hist.SetHealth(name, qos.Healthy)
		return
	}
	if wasDark {
		hist.SetHealth(name, qos.Dark)
		return
	}
	k.streak[name]++
	switch s := k.streak[name]; {
	case s >= k.opts.DarkAfter:
		hist.SetHealth(name, qos.Dark)
	case s >= k.opts.SuspectAfter:
		hist.SetHealth(name, qos.Suspect)
	}
}

// runProbe executes the member's Probe (optimistic success for providers
// without one) under the probe timeout.
func (k *checker) runProbe(ctx context.Context, m *Member) error {
	p, ok := m.Provider.(Prober)
	if !ok {
		return nil
	}
	ctx, cancel := context.WithTimeout(ctx, k.opts.ProbeTimeout)
	defer cancel()
	return p.Probe(ctx)
}

// ProbeAll runs one deterministic probe round over every current member.
// The background loop calls it on each tick; contract tests call it
// directly so health transitions need no wall-clock waiting.
func (c *Community) ProbeAll(ctx context.Context) {
	if c.checker == nil {
		return
	}
	c.mu.RLock()
	members := make([]*Member, 0, len(c.members))
	for _, m := range c.members {
		members = append(members, m)
	}
	c.mu.RUnlock()
	sort.Slice(members, func(i, j int) bool { return members[i].Name() < members[j].Name() })
	for _, m := range members {
		c.checker.probe(ctx, m)
	}
}

// StartHealthChecks launches the background probe loop (no-op when
// health checks are disabled or Interval is zero). Each wait is
// Interval + seeded-random jitter in [0, Jitter), so a fleet of hosts
// does not probe in lockstep. Stop with StopHealthChecks.
func (c *Community) StartHealthChecks(ctx context.Context) {
	k := c.checker
	if k == nil || k.opts.Interval <= 0 {
		return
	}
	k.mu.Lock()
	if k.stop != nil {
		k.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	k.stop, k.done = stop, done
	k.mu.Unlock()

	go func() {
		defer close(done)
		for {
			k.mu.Lock()
			wait := k.opts.Interval
			if k.opts.Jitter > 0 {
				wait += time.Duration(k.rng.Int63n(int64(k.opts.Jitter)))
			}
			k.mu.Unlock()
			t := time.NewTimer(wait)
			select {
			case <-t.C:
				c.ProbeAll(ctx)
			case <-stop:
				t.Stop()
				return
			case <-ctx.Done():
				t.Stop()
				return
			}
		}
	}()
}

// StopHealthChecks stops the background probe loop and waits for it to
// exit (no-op when not running).
func (c *Community) StopHealthChecks() {
	k := c.checker
	if k == nil {
		return
	}
	k.mu.Lock()
	stop, done := k.stop, k.done
	k.stop, k.done = nil, nil
	k.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
