package community

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"selfserv/internal/qos"
	"selfserv/internal/service"
)

// Policy chooses one member among the eligible candidates. Candidates are
// presented in deterministic (name-sorted) order and are never empty.
type Policy interface {
	// Name identifies the policy in logs and experiment tables.
	Name() string
	// Select picks a member for the request.
	Select(req service.Request, candidates []*Member, hist *qos.History) (*Member, error)
}

// NewRandom returns a policy choosing uniformly at random (reproducible
// under seed).
func NewRandom(seed int64) Policy {
	if seed == 0 {
		seed = 1
	}
	return &randomPolicy{rng: rand.New(rand.NewSource(seed))}
}

type randomPolicy struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (p *randomPolicy) Name() string { return "random" }

func (p *randomPolicy) Select(_ service.Request, cs []*Member, _ *qos.History) (*Member, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return cs[p.rng.Intn(len(cs))], nil
}

// NewRoundRobin returns a policy rotating through candidates.
func NewRoundRobin() Policy { return &roundRobinPolicy{} }

type roundRobinPolicy struct {
	mu sync.Mutex
	n  uint64
}

func (p *roundRobinPolicy) Name() string { return "round-robin" }

func (p *roundRobinPolicy) Select(_ service.Request, cs []*Member, _ *qos.History) (*Member, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := cs[p.n%uint64(len(cs))]
	p.n++
	return m, nil
}

// NewLeastLoaded returns a policy picking the member with the fewest
// in-flight invocations ("the status of ongoing executions"), breaking
// ties by name order.
func NewLeastLoaded() Policy { return leastLoadedPolicy{} }

type leastLoadedPolicy struct{}

func (leastLoadedPolicy) Name() string { return "least-loaded" }

func (leastLoadedPolicy) Select(_ service.Request, cs []*Member, hist *qos.History) (*Member, error) {
	best := cs[0]
	bestLoad := hist.Snapshot(best.Name()).Load
	for _, m := range cs[1:] {
		if l := hist.Snapshot(m.Name()).Load; l < bestLoad {
			best, bestLoad = m, l
		}
	}
	return best, nil
}

// Weights parameterize the QoS scoring policy. Scores are penalties:
// lower is better.
type Weights struct {
	// Latency weight per millisecond of smoothed latency.
	Latency float64
	// Unreliability weight per unit of (1 - reliability).
	Unreliability float64
	// Cost weight per unit of advertised cost.
	Cost float64
	// Load weight per in-flight invocation.
	Load float64
}

// DefaultWeights balance the four terms for millisecond-scale services.
var DefaultWeights = Weights{Latency: 1, Unreliability: 500, Cost: 5, Load: 20}

// NewQoS returns the multi-attribute scoring policy of §2: each candidate
// is scored from smoothed history (latency, reliability), advertised cost,
// and current load; the lowest penalty wins. Zero-valued weights fall
// back to DefaultWeights.
func NewQoS(w Weights) Policy {
	if w == (Weights{}) {
		w = DefaultWeights
	}
	return &qosPolicy{w: w}
}

type qosPolicy struct {
	w Weights
}

func (p *qosPolicy) Name() string { return "qos" }

func (p *qosPolicy) Select(_ service.Request, cs []*Member, hist *qos.History) (*Member, error) {
	best := cs[0]
	bestScore := p.score(best, hist)
	for _, m := range cs[1:] {
		if s := p.score(m, hist); s < bestScore {
			best, bestScore = m, s
		}
	}
	return best, nil
}

// score computes the penalty of delegating to m now.
func (p *qosPolicy) score(m *Member, hist *qos.History) float64 {
	snap := hist.Snapshot(m.Name())
	latencyMs := float64(snap.Latency) / float64(time.Millisecond)
	return p.w.Latency*latencyMs +
		p.w.Unreliability*(1-snap.Reliability) +
		p.w.Cost*m.Cost +
		p.w.Load*float64(snap.Load)
}

// NewCheapest returns a policy that always picks the lowest advertised
// cost (ties by name order). A useful baseline for E4.
func NewCheapest() Policy { return cheapestPolicy{} }

type cheapestPolicy struct{}

func (cheapestPolicy) Name() string { return "cheapest" }

func (cheapestPolicy) Select(_ service.Request, cs []*Member, _ *qos.History) (*Member, error) {
	best := cs[0]
	for _, m := range cs[1:] {
		if m.Cost < best.Cost {
			best = m
		}
	}
	return best, nil
}

// PolicyByName constructs a policy from its experiment-table name.
func PolicyByName(name string, seed int64) (Policy, error) {
	switch name {
	case "random":
		return NewRandom(seed), nil
	case "round-robin":
		return NewRoundRobin(), nil
	case "least-loaded":
		return NewLeastLoaded(), nil
	case "qos":
		return NewQoS(Weights{}), nil
	case "cheapest":
		return NewCheapest(), nil
	default:
		return nil, fmt.Errorf("community: unknown policy %q", name)
	}
}
