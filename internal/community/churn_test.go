package community

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"selfserv/internal/circuit"
	"selfserv/internal/qos"
	"selfserv/internal/service"
)

// healthOpts is the deterministic checker configuration the churn tests
// share: no background loop (tests drive ProbeAll directly), dark after
// two consecutive failures.
func healthOpts() *HealthOptions {
	return &HealthOptions{SuspectAfter: 1, DarkAfter: 2}
}

func book(t *testing.T, c *Community) (service.Response, error) {
	t.Helper()
	return c.Invoke(context.Background(), service.Request{
		Operation: "book", Params: map[string]string{"dest": "d"},
	})
}

func TestHealthStateMachineDrivenByInvocations(t *testing.T) {
	c := New("C", Options{Policy: NewCheapest(), Health: healthOpts()})
	broken := hotel("Broken", service.SimulatedOptions{})
	if err := c.Join(&Member{Provider: broken, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(member("Backup", 5, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	broken.SetDown(true)

	// First failure: suspect, still selectable.
	if _, err := book(t, c); err == nil {
		t.Fatal("invoke of dead member succeeded")
	}
	if h := c.History().Health("Broken"); h != qos.Suspect {
		t.Fatalf("health after 1 failure = %v, want suspect", h)
	}
	// Second failure: dark, excluded from selection.
	if _, err := book(t, c); err == nil {
		t.Fatal("invoke of dead member succeeded")
	}
	if h := c.History().Health("Broken"); h != qos.Dark {
		t.Fatalf("health after 2 failures = %v, want dark", h)
	}
	// Cheapest policy would still prefer Broken, but dark members never
	// reach the policy: traffic lands on Backup without failover.
	resp, err := book(t, c)
	if err != nil {
		t.Fatalf("request while member dark: %v", err)
	}
	if !strings.HasPrefix(resp.Outputs["addr"], "Backup") {
		t.Fatalf("addr = %q, want Backup", resp.Outputs["addr"])
	}
}

func TestProbeRecoversDarkMember(t *testing.T) {
	c := New("C", Options{Policy: NewCheapest(), Health: healthOpts()})
	flappy := hotel("Flappy", service.SimulatedOptions{})
	if err := c.Join(&Member{Provider: flappy, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	flappy.SetDown(true)
	for i := 0; i < 2; i++ {
		_, _ = book(t, c)
	}
	if h := c.History().Health("Flappy"); h != qos.Dark {
		t.Fatalf("health = %v, want dark", h)
	}
	// A probe round against a still-dead provider keeps it dark.
	c.ProbeAll(context.Background())
	if h := c.History().Health("Flappy"); h != qos.Dark {
		t.Fatalf("health after failed probe = %v, want dark", h)
	}
	// The provider recovers; the next probe round heals it — but its
	// reliability restarts at the prior, not the optimistic 1.
	flappy.SetDown(false)
	c.ProbeAll(context.Background())
	if h := c.History().Health("Flappy"); h != qos.Healthy {
		t.Fatalf("health after recovery probe = %v, want healthy", h)
	}
	if rel := c.History().Snapshot("Flappy").Reliability; rel > qos.PriorReliability {
		t.Fatalf("recovered reliability = %v, above the %v prior", rel, qos.PriorReliability)
	}
	if _, err := book(t, c); err != nil {
		t.Fatalf("request after recovery: %v", err)
	}
	a := c.Availability()
	if a.Probes < 2 || a.Recoveries != 1 {
		t.Fatalf("availability = %+v, want >=2 probes and 1 recovery", a)
	}
}

func TestAllDarkDistinctFromNoMember(t *testing.T) {
	c := New("C", Options{Policy: NewCheapest(), Health: healthOpts()})
	only := hotel("Only", service.SimulatedOptions{})
	if err := c.Join(&Member{Provider: only, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	only.SetDown(true)
	for i := 0; i < 2; i++ {
		_, _ = book(t, c)
	}
	_, err := book(t, c)
	if !errors.Is(err, ErrAllDark) {
		t.Fatalf("all-members-dark err = %v, want ErrAllDark", err)
	}
	if errors.Is(err, ErrNoMember) {
		t.Fatal("ErrAllDark must not alias ErrNoMember")
	}
}

func TestFailoverBackoffDoubles(t *testing.T) {
	var mu sync.Mutex
	var delays []time.Duration
	c := New("C", Options{
		Policy:   NewCheapest(),
		Failover: 3,
		Backoff:  10 * time.Millisecond,
		Sleep: func(_ context.Context, d time.Duration) {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
		},
	})
	names := []string{"A", "B", "C3", "D"}
	providers := map[string]*service.Simulated{}
	for i, n := range names {
		p := hotel(n, service.SimulatedOptions{})
		providers[n] = p
		if err := c.Join(&Member{Provider: p, Cost: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// First three choices (cheapest order A, B, C3) are dead; D rescues.
	for _, n := range []string{"A", "B", "C3"} {
		providers[n].SetDown(true)
	}
	resp, err := book(t, c)
	if err != nil {
		t.Fatalf("failover did not rescue: %v", err)
	}
	if !strings.HasPrefix(resp.Outputs["addr"], "D") {
		t.Fatalf("addr = %q, want D", resp.Outputs["addr"])
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay %d = %v, want %v (exponential backoff)", i, delays[i], want[i])
		}
	}
	if got := c.Availability().Failovers; got != 3 {
		t.Fatalf("Failovers = %d, want 3", got)
	}
}

func TestIdempotentRetryDoesNotReexecute(t *testing.T) {
	c := New("C", Options{})
	p := hotel("A", service.SimulatedOptions{})
	if err := c.Join(&Member{Provider: p, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	req := service.Request{
		Operation: "book", Params: map[string]string{"dest": "d"},
		IdempotencyKey: "trip-42/book/0",
	}
	if _, err := c.Invoke(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// A caller-side retry of the SAME logical invocation (same key)
	// replays the cached response instead of booking twice.
	if _, err := c.Invoke(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if invoked, _, _ := p.Counters(); invoked != 1 {
		t.Fatalf("provider executed %d times, want 1", invoked)
	}
	if hits := c.Availability().DedupHits; hits != 1 {
		t.Fatalf("DedupHits = %d, want 1", hits)
	}
}

func TestMemberBreakerTripsAndRecovers(t *testing.T) {
	clk := struct {
		mu  sync.Mutex
		now time.Time
	}{now: time.Unix(9000, 0)}
	now := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.now
	}
	advance := func(d time.Duration) {
		clk.mu.Lock()
		clk.now = clk.now.Add(d)
		clk.mu.Unlock()
	}

	var opened []string
	c := New("C", Options{
		Policy:   NewCheapest(),
		Failover: 1,
		Breaker: &circuit.Options{
			Window: 4, MinSamples: 4, Threshold: 1.0,
			OpenFor: time.Minute, Now: now,
		},
		OnBreakerOpen: func(m string) { opened = append(opened, m) },
	})
	wedged := hotel("Wedged", service.SimulatedOptions{})
	if err := c.Join(&Member{Provider: wedged, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(member("Steady", 5, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	wedged.SetDown(true)

	// Four failures fill the window and trip the breaker (failover keeps
	// the requests succeeding via Steady the whole time).
	for i := 0; i < 4; i++ {
		resp, err := book(t, c)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !strings.HasPrefix(resp.Outputs["addr"], "Steady") {
			t.Fatalf("request %d addr = %q", i, resp.Outputs["addr"])
		}
	}
	if st := c.BreakerState("Wedged"); st != circuit.Open {
		t.Fatalf("breaker state = %v, want open", st)
	}
	if len(opened) != 1 || opened[0] != "Wedged" {
		t.Fatalf("OnBreakerOpen calls = %v", opened)
	}
	wedgedBefore, _, _ := wedged.Counters()

	// While open, the wedged member is refused WITHOUT being invoked.
	for i := 0; i < 3; i++ {
		if _, err := book(t, c); err != nil {
			t.Fatal(err)
		}
	}
	if after, _, _ := wedged.Counters(); after != wedgedBefore {
		t.Fatalf("open breaker still let %d invocations through", after-wedgedBefore)
	}
	a := c.Availability()
	if a.BreakerOpens != 1 || a.BreakerRefusals < 3 {
		t.Fatalf("availability = %+v, want 1 open and >=3 refusals", a)
	}

	// After the cool-down, the half-open probe invocation reaches the
	// (recovered) member and closes the breaker.
	wedged.SetDown(false)
	advance(2 * time.Minute)
	resp, err := book(t, c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Outputs["addr"], "Wedged") {
		t.Fatalf("half-open probe addr = %q, want Wedged", resp.Outputs["addr"])
	}
	if st := c.BreakerState("Wedged"); st != circuit.Closed {
		t.Fatalf("breaker state after probe success = %v, want closed", st)
	}
}

func TestBreakerRefusalDoesNotBurnRetryBudget(t *testing.T) {
	clk := time.Unix(9000, 0)
	c := New("C", Options{
		Policy:   NewCheapest(),
		Failover: 0, // single delegation
		Breaker: &circuit.Options{
			Window: 2, MinSamples: 2, Threshold: 0.5,
			OpenFor: time.Hour, Now: func() time.Time { return clk },
		},
	})
	dead := hotel("Dead", service.SimulatedOptions{})
	if err := c.Join(&Member{Provider: dead, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(member("Live", 5, service.SimulatedOptions{})); err != nil {
		t.Fatal(err)
	}
	dead.SetDown(true)
	for i := 0; i < 2; i++ {
		_, _ = book(t, c) // trip Dead's breaker (each is the one delegation)
	}
	// Even with Failover=0, an open-breaker refusal is not an attempt:
	// the single delegation goes to Live.
	resp, err := book(t, c)
	if err != nil {
		t.Fatalf("request after breaker opened: %v", err)
	}
	if !strings.HasPrefix(resp.Outputs["addr"], "Live") {
		t.Fatalf("addr = %q, want Live", resp.Outputs["addr"])
	}
}

func TestStartStopHealthChecks(t *testing.T) {
	c := New("C", Options{Health: &HealthOptions{
		Interval: time.Millisecond, Jitter: time.Millisecond, Seed: 7,
	}})
	down := hotel("Down", service.SimulatedOptions{})
	if err := c.Join(&Member{Provider: down, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	down.SetDown(true)
	c.StartHealthChecks(context.Background())
	c.StartHealthChecks(context.Background()) // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for c.History().Health("Down") != qos.Dark {
		if time.Now().After(deadline) {
			t.Fatal("background probes never darkened the dead member")
		}
		time.Sleep(time.Millisecond)
	}
	c.StopHealthChecks()
	c.StopHealthChecks() // idempotent
	if got := c.Availability().Probes; got == 0 {
		t.Fatalf("Probes = %d after background loop ran", got)
	}
}
