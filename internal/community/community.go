// Package community implements SELF-SERV service communities:
// "containers of alternative services" that describe a desired capability
// without naming a provider. At runtime a community receives operation
// requests and delegates each one to a current member, choosing by "the
// parameters of the request, the characteristics of the members, the
// history of past executions and the status of ongoing executions" (§2).
//
// A Community implements service.Provider, so composite statecharts bind
// to communities exactly as they bind to elementary services — the
// delegation is transparent to coordinators (in the demo, Accommodation
// Booking is a community while the other four are elementary).
package community

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"selfserv/internal/circuit"
	"selfserv/internal/expr"
	"selfserv/internal/qos"
	"selfserv/internal/service"
)

// ErrNoMember reports that no member was eligible for a request.
var ErrNoMember = errors.New("community: no eligible member")

// ErrAllDark reports that eligible members exist, but every one of them
// is currently excluded by the health checker (dark/probing). Distinct
// from ErrNoMember so callers can tell "this request matches nobody"
// (a routing problem) from "everyone who could serve it is down" (an
// availability incident worth retrying later).
var ErrAllDark = errors.New("community: all eligible members are dark")

// Member is one alternative provider inside a community.
type Member struct {
	// Provider executes the actual operations.
	Provider service.Provider
	// Cost is the advertised price per invocation (arbitrary units);
	// selection policies may weigh it.
	Cost float64
	// Attributes are static member characteristics ("city"="sydney",
	// "stars"="4"); membership predicates match them against requests.
	Attributes map[string]string
	// Predicate optionally restricts which requests the member can serve:
	// an expression over request parameters (prefixed "req.") and member
	// attributes (bare names). Empty accepts everything.
	Predicate string
}

// Name returns the member's provider name.
func (m *Member) Name() string { return m.Provider.Name() }

// eligible evaluates the member's predicate against a request.
func (m *Member) eligible(req service.Request) (bool, error) {
	if m.Predicate == "" {
		return true, nil
	}
	env := expr.NewMapEnv()
	for k, v := range m.Attributes {
		env.BindText(k, v)
	}
	for k, v := range req.Params {
		env.BindText("req."+k, v)
	}
	ok, err := expr.EvalBool(m.Predicate, env)
	if err != nil {
		return false, fmt.Errorf("community: member %q predicate: %w", m.Name(), err)
	}
	return ok, nil
}

// Options configure a community.
type Options struct {
	// Policy selects among eligible members; nil defaults to RoundRobin.
	Policy Policy
	// Alpha is the QoS history smoothing factor (see qos.NewHistory).
	Alpha float64
	// Failover retries the next-best member when one fails, up to
	// Failover additional attempts. Zero reproduces the paper's single
	// delegation.
	Failover int
	// Backoff is the base delay before the first failover retry; each
	// further retry doubles it. Zero retries immediately (the historical
	// behaviour).
	Backoff time.Duration
	// Sleep waits between failover attempts; nil uses a context-aware
	// sleep. Tests inject a recorder so the backoff contract is checked
	// without real delays.
	Sleep func(ctx context.Context, d time.Duration)
	// Breaker enables a per-member circuit breaker with these settings;
	// nil disables breakers entirely. A member whose breaker is open is
	// refused instantly (no invocation, no retry-budget consumption) and
	// failover moves on to the next choice.
	Breaker *circuit.Options
	// Health configures the active health checker; nil disables both
	// active probing and the invocation-driven health state machine.
	Health *HealthOptions
	// DedupCapacity bounds the idempotency-dedup cache wrapped around the
	// community (see service.NewIdempotent); <= 0 uses the default. Dedup
	// itself is always on — requests without an IdempotencyKey pass
	// through untouched.
	DedupCapacity int
	// OnFailover, if non-nil, observes each failover retry (called with
	// the member the retry is delegated to). Hosts mirror these into
	// transport-level node stats.
	OnFailover func(member string)
	// OnBreakerOpen, if non-nil, observes each member breaker tripping
	// open.
	OnBreakerOpen func(member string)
	// Now is the clock used to time member invocations for the QoS
	// history; nil uses time.Now. Deterministic tests inject a fake.
	Now func() time.Time
}

// Community is a container of alternative services behind one name.
type Community struct {
	name     string
	policy   Policy
	history  *qos.History
	failov   int
	backoff  time.Duration
	sleep    func(ctx context.Context, d time.Duration)
	now      func() time.Time
	breakers *circuit.Group // nil when breakers are disabled
	checker  *checker       // nil when health checks are disabled
	dedup    *service.Idempotent
	onFail   func(member string)

	failovers    atomic.Int64
	breakerOpens atomic.Int64
	refusals     atomic.Int64

	mu      sync.RWMutex
	members map[string]*Member
}

// New returns an empty community with the given public name.
func New(name string, opts Options) *Community {
	p := opts.Policy
	if p == nil {
		p = NewRoundRobin()
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	c := &Community{
		name:    name,
		policy:  p,
		history: qos.NewHistory(opts.Alpha),
		failov:  opts.Failover,
		backoff: opts.Backoff,
		sleep:   sleep,
		now:     opts.Now,
		onFail:  opts.OnFailover,
		members: map[string]*Member{},
	}
	if opts.Breaker != nil {
		c.breakers = circuit.NewGroup(*opts.Breaker)
		onOpen := opts.OnBreakerOpen
		c.breakers.OnOpen(func(member string) {
			c.breakerOpens.Add(1)
			if onOpen != nil {
				onOpen(member)
			}
		})
	}
	if opts.Health != nil {
		c.checker = newChecker(c, *opts.Health)
	}
	c.dedup = service.NewIdempotent(coreInvoker{c}, opts.DedupCapacity)
	return c
}

// coreInvoker adapts the community's delegation loop to service.Provider
// so the idempotency-dedup layer can wrap it: Community.Invoke = dedup
// over invokeOnce. Failover retries INSIDE one logical invocation share
// the attempt loop; retries OF the logical invocation (an engine
// re-firing after a delegation timeout, carrying the same
// IdempotencyKey) are absorbed by the dedup layer instead of executing
// twice.
type coreInvoker struct{ c *Community }

func (ci coreInvoker) Name() string         { return ci.c.name }
func (ci coreInvoker) Operations() []string { return ci.c.Operations() }
func (ci coreInvoker) Invoke(ctx context.Context, req service.Request) (service.Response, error) {
	return ci.c.invokeOnce(ctx, req)
}

// Join adds (or replaces) a member. Communities are dynamic: providers
// join and leave at runtime.
func (c *Community) Join(m *Member) error {
	if m == nil || m.Provider == nil {
		return fmt.Errorf("community %q: nil member", c.name)
	}
	if m.Predicate != "" {
		if _, err := expr.Parse(m.Predicate); err != nil {
			return fmt.Errorf("community %q: member %q: %w", c.name, m.Name(), err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members[m.Name()] = m
	return nil
}

// Leave removes the named member (no-op when absent).
func (c *Community) Leave(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.members, name)
}

// Members returns the current member names, sorted.
func (c *Community) Members() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.members))
	for n := range c.members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// History exposes the community's QoS observations (read-mostly; used by
// experiments and monitoring).
func (c *Community) History() *qos.History { return c.history }

// Name implements service.Provider.
func (c *Community) Name() string { return c.name }

// Operations implements service.Provider: the union of member operations.
func (c *Community) Operations() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	for _, m := range c.members {
		for _, op := range m.Provider.Operations() {
			seen[op] = true
		}
	}
	ops := make([]string, 0, len(seen))
	for op := range seen {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// Invoke implements service.Provider: it selects a member via the policy
// and delegates, recording QoS history. With Failover > 0 it retries
// failed invocations on the next choice (after backoff), excluding
// members already tried and members whose circuit breaker refuses.
// Requests carrying an IdempotencyKey are deduplicated first: a retry of
// an already-completed logical invocation replays the cached response.
func (c *Community) Invoke(ctx context.Context, req service.Request) (service.Response, error) {
	return c.dedup.Invoke(ctx, req)
}

// invokeOnce is the delegation loop behind the dedup layer.
func (c *Community) invokeOnce(ctx context.Context, req service.Request) (service.Response, error) {
	tried := map[string]bool{}
	attempts := c.failov + 1
	invoked := 0
	var lastErr error
	for invoked < attempts {
		m, err := c.selectMember(req, tried)
		if err != nil {
			if lastErr != nil {
				return service.Response{}, fmt.Errorf("%w (last failure: %v)", err, lastErr)
			}
			return service.Response{}, err
		}
		tried[m.Name()] = true
		if c.breakers != nil {
			if err := c.breakers.Get(m.Name()).Allow(); err != nil {
				// An open breaker refuses instantly: no invocation happened,
				// so this does NOT consume the retry budget — move straight
				// to the next candidate.
				c.refusals.Add(1)
				lastErr = fmt.Errorf("member %q: %w", m.Name(), err)
				continue
			}
		}
		if invoked > 0 {
			// This is a failover retry: record it and back off first.
			c.failovers.Add(1)
			if c.onFail != nil {
				c.onFail(m.Name())
			}
			if c.backoff > 0 {
				c.sleep(ctx, c.backoff<<(invoked-1))
			}
		}
		invoked++
		c.history.Begin(m.Name())
		start := c.now()
		resp, err := m.Provider.Invoke(ctx, req)
		c.history.End(m.Name(), c.now().Sub(start), err == nil)
		c.recordOutcome(m.Name(), err == nil)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // don't burn retries on a cancelled context
		}
	}
	return service.Response{}, fmt.Errorf("community %q: all %d attempt(s) failed: %w", c.name, invoked, lastErr)
}

// recordOutcome feeds one invocation result to the member's breaker and
// the health state machine.
func (c *Community) recordOutcome(member string, ok bool) {
	if c.breakers != nil {
		b := c.breakers.Get(member)
		if ok {
			b.Success()
		} else {
			b.Failure()
		}
	}
	if c.checker != nil {
		c.checker.observe(member, ok)
	}
}

// selectMember snapshots eligible members and applies the policy. Members
// excluded by the health checker (dark/probing) never reach the policy;
// when they are the only eligible ones the error is ErrAllDark, not
// ErrNoMember.
func (c *Community) selectMember(req service.Request, exclude map[string]bool) (*Member, error) {
	c.mu.RLock()
	candidates := make([]*Member, 0, len(c.members))
	names := make([]string, 0, len(c.members))
	for n := range c.members {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic policy input order
	dark := 0
	for _, n := range names {
		if exclude[n] {
			continue
		}
		m := c.members[n]
		ok, err := m.eligible(req)
		if err != nil {
			// A broken predicate disqualifies the member, not the request.
			continue
		}
		if !ok {
			continue
		}
		if !c.history.Health(n).Selectable() {
			dark++
			continue
		}
		candidates = append(candidates, m)
	}
	c.mu.RUnlock()
	if len(candidates) == 0 {
		if dark > 0 {
			return nil, fmt.Errorf("%w: %d member(s) for %s.%s in community %q await recovery probes",
				ErrAllDark, dark, req.Service, req.Operation, c.name)
		}
		return nil, fmt.Errorf("%w for %s.%s in community %q", ErrNoMember, req.Service, req.Operation, c.name)
	}
	m, err := c.policy.Select(req, candidates, c.history)
	if err != nil {
		return nil, fmt.Errorf("community %q: policy %s: %w", c.name, c.policy.Name(), err)
	}
	return m, nil
}

// Availability is a snapshot of the community's churn-survival counters.
type Availability struct {
	// Failovers counts failover retries (delegations after the first
	// attempt of a logical invocation failed).
	Failovers int64
	// BreakerOpens counts member circuit breakers tripping open.
	BreakerOpens int64
	// BreakerRefusals counts delegations refused instantly by an open
	// breaker.
	BreakerRefusals int64
	// DedupHits counts duplicate invocations absorbed by the idempotency
	// cache (retries that did not re-execute).
	DedupHits int64
	// Probes and Recoveries count active health probes and dark-member
	// recoveries (zero when health checks are disabled).
	Probes     int64
	Recoveries int64
}

// Availability returns the community's churn-survival counters.
func (c *Community) Availability() Availability {
	a := Availability{
		Failovers:       c.failovers.Load(),
		BreakerOpens:    c.breakerOpens.Load(),
		BreakerRefusals: c.refusals.Load(),
		DedupHits:       c.dedup.Hits(),
	}
	if c.checker != nil {
		a.Probes = c.checker.probes.Load()
		a.Recoveries = c.checker.recoveries.Load()
	}
	return a
}

// BreakerState reports the named member's breaker state (Closed when
// breakers are disabled).
func (c *Community) BreakerState(member string) circuit.State {
	if c.breakers == nil {
		return circuit.Closed
	}
	return c.breakers.Get(member).State()
}
