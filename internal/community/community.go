// Package community implements SELF-SERV service communities:
// "containers of alternative services" that describe a desired capability
// without naming a provider. At runtime a community receives operation
// requests and delegates each one to a current member, choosing by "the
// parameters of the request, the characteristics of the members, the
// history of past executions and the status of ongoing executions" (§2).
//
// A Community implements service.Provider, so composite statecharts bind
// to communities exactly as they bind to elementary services — the
// delegation is transparent to coordinators (in the demo, Accommodation
// Booking is a community while the other four are elementary).
package community

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"selfserv/internal/expr"
	"selfserv/internal/qos"
	"selfserv/internal/service"
)

// ErrNoMember reports that no member was eligible for a request.
var ErrNoMember = errors.New("community: no eligible member")

// Member is one alternative provider inside a community.
type Member struct {
	// Provider executes the actual operations.
	Provider service.Provider
	// Cost is the advertised price per invocation (arbitrary units);
	// selection policies may weigh it.
	Cost float64
	// Attributes are static member characteristics ("city"="sydney",
	// "stars"="4"); membership predicates match them against requests.
	Attributes map[string]string
	// Predicate optionally restricts which requests the member can serve:
	// an expression over request parameters (prefixed "req.") and member
	// attributes (bare names). Empty accepts everything.
	Predicate string
}

// Name returns the member's provider name.
func (m *Member) Name() string { return m.Provider.Name() }

// eligible evaluates the member's predicate against a request.
func (m *Member) eligible(req service.Request) (bool, error) {
	if m.Predicate == "" {
		return true, nil
	}
	env := expr.NewMapEnv()
	for k, v := range m.Attributes {
		env.BindText(k, v)
	}
	for k, v := range req.Params {
		env.BindText("req."+k, v)
	}
	ok, err := expr.EvalBool(m.Predicate, env)
	if err != nil {
		return false, fmt.Errorf("community: member %q predicate: %w", m.Name(), err)
	}
	return ok, nil
}

// Options configure a community.
type Options struct {
	// Policy selects among eligible members; nil defaults to RoundRobin.
	Policy Policy
	// Alpha is the QoS history smoothing factor (see qos.NewHistory).
	Alpha float64
	// Failover retries the next-best member when one fails, up to
	// Failover additional attempts. Zero reproduces the paper's single
	// delegation.
	Failover int
}

// Community is a container of alternative services behind one name.
type Community struct {
	name    string
	policy  Policy
	history *qos.History
	failov  int

	mu      sync.RWMutex
	members map[string]*Member
}

// New returns an empty community with the given public name.
func New(name string, opts Options) *Community {
	p := opts.Policy
	if p == nil {
		p = NewRoundRobin()
	}
	return &Community{
		name:    name,
		policy:  p,
		history: qos.NewHistory(opts.Alpha),
		failov:  opts.Failover,
		members: map[string]*Member{},
	}
}

// Join adds (or replaces) a member. Communities are dynamic: providers
// join and leave at runtime.
func (c *Community) Join(m *Member) error {
	if m == nil || m.Provider == nil {
		return fmt.Errorf("community %q: nil member", c.name)
	}
	if m.Predicate != "" {
		if _, err := expr.Parse(m.Predicate); err != nil {
			return fmt.Errorf("community %q: member %q: %w", c.name, m.Name(), err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members[m.Name()] = m
	return nil
}

// Leave removes the named member (no-op when absent).
func (c *Community) Leave(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.members, name)
}

// Members returns the current member names, sorted.
func (c *Community) Members() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.members))
	for n := range c.members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// History exposes the community's QoS observations (read-mostly; used by
// experiments and monitoring).
func (c *Community) History() *qos.History { return c.history }

// Name implements service.Provider.
func (c *Community) Name() string { return c.name }

// Operations implements service.Provider: the union of member operations.
func (c *Community) Operations() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	for _, m := range c.members {
		for _, op := range m.Provider.Operations() {
			seen[op] = true
		}
	}
	ops := make([]string, 0, len(seen))
	for op := range seen {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// Invoke implements service.Provider: it selects a member via the policy
// and delegates, recording QoS history. With Failover > 0 it retries
// failed invocations on the next choice, excluding members already tried.
func (c *Community) Invoke(ctx context.Context, req service.Request) (service.Response, error) {
	tried := map[string]bool{}
	attempts := c.failov + 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		m, err := c.selectMember(req, tried)
		if err != nil {
			if lastErr != nil {
				return service.Response{}, fmt.Errorf("%w (last failure: %v)", err, lastErr)
			}
			return service.Response{}, err
		}
		tried[m.Name()] = true
		c.history.Begin(m.Name())
		start := time.Now()
		resp, err := m.Provider.Invoke(ctx, req)
		c.history.End(m.Name(), time.Since(start), err == nil)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // don't burn retries on a cancelled context
		}
	}
	return service.Response{}, fmt.Errorf("community %q: all %d attempt(s) failed: %w", c.name, len(tried), lastErr)
}

// selectMember snapshots eligible members and applies the policy.
func (c *Community) selectMember(req service.Request, exclude map[string]bool) (*Member, error) {
	c.mu.RLock()
	candidates := make([]*Member, 0, len(c.members))
	names := make([]string, 0, len(c.members))
	for n := range c.members {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic policy input order
	for _, n := range names {
		if exclude[n] {
			continue
		}
		m := c.members[n]
		ok, err := m.eligible(req)
		if err != nil {
			// A broken predicate disqualifies the member, not the request.
			continue
		}
		if ok {
			candidates = append(candidates, m)
		}
	}
	c.mu.RUnlock()
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w for %s.%s in community %q", ErrNoMember, req.Service, req.Operation, c.name)
	}
	m, err := c.policy.Select(req, candidates, c.history)
	if err != nil {
		return nil, fmt.Errorf("community %q: policy %s: %w", c.name, c.policy.Name(), err)
	}
	return m, nil
}
