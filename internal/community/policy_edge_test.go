package community

import (
	"context"
	"errors"
	"strings"
	"testing"

	"selfserv/internal/service"
)

// TestAllIneligibleIsNoMemberNotAllDark: when every member's predicate
// rejects the request, the error is ErrNoMember (a routing problem), not
// ErrAllDark (an availability incident).
func TestAllIneligibleIsNoMemberNotAllDark(t *testing.T) {
	c := New("C", Options{Health: healthOpts()})
	m := member("Sydney", 1, service.SimulatedOptions{})
	m.Attributes = map[string]string{"city": "sydney"}
	m.Predicate = "city = req.dest"
	if err := c.Join(m); err != nil {
		t.Fatal(err)
	}
	_, err := c.Invoke(context.Background(), service.Request{
		Operation: "book", Params: map[string]string{"dest": "mars"},
	})
	if !errors.Is(err, ErrNoMember) {
		t.Fatalf("all-ineligible err = %v, want ErrNoMember", err)
	}
	if errors.Is(err, ErrAllDark) {
		t.Fatal("all-ineligible must not report ErrAllDark")
	}
}

// TestPredicateErrorRejectsMemberNotRequest: a member whose predicate
// fails to EVALUATE (here: an unbound variable) is silently disqualified;
// the request still succeeds through a member with a valid predicate.
func TestPredicateErrorRejectsMemberNotRequest(t *testing.T) {
	c := New("C", Options{Policy: NewCheapest()})
	broken := member("BrokenPred", 1, service.SimulatedOptions{})
	// Parses fine (so Join accepts it) but references a variable neither
	// the attributes nor the request bind — evaluation always errors.
	broken.Predicate = "no_such_attribute = req.dest"
	good := member("Good", 9, service.SimulatedOptions{})
	if err := c.Join(broken); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(good); err != nil {
		t.Fatal(err)
	}
	// Cheapest would prefer BrokenPred (cost 1 vs 9); its broken predicate
	// must knock IT out, not fail the request.
	resp, err := c.Invoke(context.Background(), service.Request{
		Operation: "book", Params: map[string]string{"dest": "d"},
	})
	if err != nil {
		t.Fatalf("request rejected by a member's broken predicate: %v", err)
	}
	if !strings.HasPrefix(resp.Outputs["addr"], "Good") {
		t.Fatalf("addr = %q, want Good", resp.Outputs["addr"])
	}
	// When the broken-predicate member is the ONLY member, the request
	// (correctly) finds nobody.
	c.Leave("Good")
	if _, err := c.Invoke(context.Background(), service.Request{
		Operation: "book", Params: map[string]string{"dest": "d"},
	}); !errors.Is(err, ErrNoMember) {
		t.Fatalf("err = %v, want ErrNoMember", err)
	}
}

// TestQoSTieBreakDeterministic: members with identical QoS history, cost,
// and load tie on score; the policy must resolve the tie by the
// deterministic name-sorted candidate order, every time.
func TestQoSTieBreakDeterministic(t *testing.T) {
	p := NewQoS(Weights{})
	c := New("C", Options{Policy: p})
	// Join in non-alphabetical order to prove sorting, not insertion
	// order, decides.
	for _, n := range []string{"Zulu", "Alpha", "Mike"} {
		if err := c.Join(member(n, 3, service.SimulatedOptions{})); err != nil {
			t.Fatal(err)
		}
	}
	// Identical histories for all three.
	for _, n := range []string{"Zulu", "Alpha", "Mike"} {
		c.History().Begin(n)
		c.History().End(n, 0, true)
	}
	for i := 0; i < 5; i++ {
		m, err := c.selectMember(service.Request{Operation: "book"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != "Alpha" {
			t.Fatalf("iteration %d: tie broken to %q, want Alpha (first in name order)", i, m.Name())
		}
	}
}

// TestCheapestTieBreakDeterministic: equal costs resolve by name order.
func TestCheapestTieBreakDeterministic(t *testing.T) {
	c := New("C", Options{Policy: NewCheapest()})
	for _, n := range []string{"Bravo", "Delta", "Charlie"} {
		if err := c.Join(member(n, 2, service.SimulatedOptions{})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := c.selectMember(service.Request{Operation: "book"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != "Bravo" {
			t.Fatalf("iteration %d: tie broken to %q, want Bravo", i, m.Name())
		}
	}
}

// TestLeastLoadedTieBreakDeterministic: equal loads resolve by name order.
func TestLeastLoadedTieBreakDeterministic(t *testing.T) {
	c := New("C", Options{Policy: NewLeastLoaded()})
	for _, n := range []string{"Yankee", "Echo"} {
		if err := c.Join(member(n, 1, service.SimulatedOptions{})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := c.selectMember(service.Request{Operation: "book"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != "Echo" {
			t.Fatalf("iteration %d: tie broken to %q, want Echo", i, m.Name())
		}
	}
}
