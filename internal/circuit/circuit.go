// Package circuit implements per-destination circuit breakers: the
// fail-fast layer of the availability-under-churn story. A breaker
// watches the rolling outcome window of calls toward one destination (a
// community member, a transport peer) and, when the recent failure rate
// crosses a threshold, OPENS: further calls are refused immediately with
// ErrOpen instead of burning a timeout, a retry budget, or a bounded
// queue slot on a peer that is known to be wedged. After a cool-down the
// breaker admits a limited number of probe calls (half-open); their
// outcome decides between closing again and re-opening.
//
// The package is deliberately clock-injectable (Options.Now): every
// transition — including the open → half-open cool-down — is decided by
// the injected clock, so the contract tests drive a breaker through its
// whole lifecycle without sleeping.
package circuit

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrOpen reports a call refused because the breaker is open (or because
// the half-open probe quota is taken). The call was NOT attempted.
var ErrOpen = errors.New("circuit: breaker open")

// State is a breaker's position in the closed → open → half-open cycle.
type State int

const (
	// Closed admits every call; outcomes feed the rolling window.
	Closed State = iota
	// Open refuses every call until the cool-down elapses.
	Open
	// HalfOpen admits up to Options.HalfOpenProbes concurrent probe
	// calls; a success closes the breaker, a failure re-opens it.
	HalfOpen
)

// String returns the conventional lowercase name of the state.
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "closed"
}

// Default breaker parameters (see Options).
const (
	DefaultWindow         = 16
	DefaultThreshold      = 0.5
	DefaultMinSamples     = 4
	DefaultOpenFor        = 2 * time.Second
	DefaultHalfOpenProbes = 1
)

// Options tune a breaker. The zero value means: a 16-outcome rolling
// window, open at a 50% failure rate once 4 samples are in, stay open
// for 2s, then admit one half-open probe.
type Options struct {
	// Window is the rolling outcome window size, in calls. 0 means 16.
	Window int
	// Threshold is the failure fraction of the window at or above which
	// the breaker opens. 0 means 0.5. (Threshold > 1 never opens — a
	// practical way to disable tripping while keeping the accounting.)
	Threshold float64
	// MinSamples is the minimum number of recorded outcomes before the
	// window is judged at all; below it the breaker stays closed no
	// matter the failures (a single early failure must not trip a fresh
	// breaker). 0 means 4.
	MinSamples int
	// OpenFor is the cool-down an open breaker waits before admitting
	// half-open probes. 0 means 2s.
	OpenFor time.Duration
	// HalfOpenProbes is how many concurrent probe calls half-open
	// admits, and how many consecutive probe successes close the
	// breaker. 0 means 1.
	HalfOpenProbes int
	// Now is the clock; nil means time.Now. Tests inject a manual clock
	// so cool-downs are deterministic.
	Now func() time.Time
}

// withDefaults fills zero fields with the documented defaults.
func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Threshold <= 0 {
		o.Threshold = DefaultThreshold
	}
	if o.MinSamples <= 0 {
		o.MinSamples = DefaultMinSamples
	}
	if o.OpenFor <= 0 {
		o.OpenFor = DefaultOpenFor
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = DefaultHalfOpenProbes
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Breaker is one circuit breaker. Safe for concurrent use.
type Breaker struct {
	opts Options

	mu       sync.Mutex
	state    State
	window   []bool // ring of outcomes, true = failure
	size     int    // filled entries in window
	head     int    // next write position
	failures int    // failures among the filled entries
	openedAt time.Time
	probes   int // half-open: probe calls currently admitted
	probeOK  int // half-open: consecutive probe successes
	opens    int64
	refused  int64
	onOpen   func()
}

// New returns a closed breaker.
func New(opts Options) *Breaker {
	o := opts.withDefaults()
	return &Breaker{opts: o, window: make([]bool, o.Window)}
}

// OnOpen registers fn to run (synchronously, without the breaker lock)
// every time the breaker transitions to Open — the stats hook.
func (b *Breaker) OnOpen(fn func()) {
	b.mu.Lock()
	b.onOpen = fn
	b.mu.Unlock()
}

// Allow asks to place one call. nil admits it — the caller MUST then
// report the outcome with Success or Failure, or half-open probes would
// leak their quota. ErrOpen (wrapped with the remaining cool-down)
// refuses it; refused calls must NOT be reported.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		remaining := b.opts.OpenFor - b.opts.Now().Sub(b.openedAt)
		if remaining > 0 {
			b.refused++
			return fmt.Errorf("%w for another %v", ErrOpen, remaining)
		}
		// Cool-down elapsed: this call becomes the first half-open probe.
		b.state = HalfOpen
		b.probes = 1
		b.probeOK = 0
		return nil
	default: // HalfOpen
		if b.probes >= b.opts.HalfOpenProbes {
			b.refused++
			return fmt.Errorf("%w (half-open probe quota taken)", ErrOpen)
		}
		b.probes++
		return nil
	}
}

// Success reports a successful admitted call.
func (b *Breaker) Success() { b.record(false) }

// Failure reports a failed admitted call.
func (b *Breaker) Failure() { b.record(true) }

func (b *Breaker) record(failed bool) {
	b.mu.Lock()
	var opened func()
	switch b.state {
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if failed {
			// The peer is still sick: re-open and restart the cool-down.
			opened = b.openLocked()
		} else {
			b.probeOK++
			if b.probeOK >= b.opts.HalfOpenProbes {
				// Recovered: close with a clean window, so the failures
				// that opened the breaker don't instantly re-trip it.
				b.state = Closed
				b.resetWindowLocked()
			}
		}
	default:
		// Closed — and Open, for stragglers admitted before the trip:
		// their outcomes keep feeding the window harmlessly.
		b.pushLocked(failed)
		if b.state == Closed && b.size >= b.opts.MinSamples &&
			float64(b.failures) >= b.opts.Threshold*float64(b.size) {
			opened = b.openLocked()
		}
	}
	b.mu.Unlock()
	if opened != nil {
		opened()
	}
}

// openLocked transitions to Open and returns the registered OnOpen hook
// (to be run after the lock is released). Caller holds b.mu.
func (b *Breaker) openLocked() func() {
	b.state = Open
	b.openedAt = b.opts.Now()
	b.opens++
	b.resetWindowLocked()
	return b.onOpen
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.size, b.head, b.failures = 0, 0, 0
	b.probes, b.probeOK = 0, 0
}

// pushLocked files one outcome into the rolling window. Caller holds b.mu.
func (b *Breaker) pushLocked(failed bool) {
	if b.size == len(b.window) {
		if b.window[b.head] {
			b.failures--
		}
	} else {
		b.size++
	}
	b.window[b.head] = failed
	if failed {
		b.failures++
	}
	b.head = (b.head + 1) % len(b.window)
}

// State returns the breaker's current state. An open breaker whose
// cool-down has elapsed still reports Open until the next Allow turns it
// half-open (transitions happen on calls, not on a timer).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has transitioned to Open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Refused returns how many calls Allow has refused with ErrOpen.
func (b *Breaker) Refused() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.refused
}

// Group is a lazily-populated set of breakers sharing one Options,
// keyed by destination. Safe for concurrent use.
type Group struct {
	opts Options

	mu       sync.Mutex
	breakers map[string]*Breaker
	onOpen   func(key string)
}

// NewGroup returns an empty group; breakers are created on first Get.
func NewGroup(opts Options) *Group {
	return &Group{opts: opts.withDefaults(), breakers: map[string]*Breaker{}}
}

// OnOpen registers fn to run with the key of any group breaker that
// opens (including breakers created after the call).
func (g *Group) OnOpen(fn func(key string)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.onOpen = fn
	for key, b := range g.breakers {
		key := key
		b.OnOpen(func() { fn(key) })
	}
}

// Get returns the breaker for key, creating it closed on first use.
func (g *Group) Get(key string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.breakers[key]
	if !ok {
		b = New(g.opts)
		if g.onOpen != nil {
			fn, key := g.onOpen, key
			b.OnOpen(func() { fn(key) })
		}
		g.breakers[key] = b
	}
	return b
}

// States snapshots every breaker's state, keyed by destination.
func (g *Group) States() map[string]State {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]State, len(g.breakers))
	for k, b := range g.breakers {
		out[k] = b.State()
	}
	return out
}

// Keys returns the keys with a breaker, sorted.
func (g *Group) Keys() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	keys := make([]string, 0, len(g.breakers))
	for k := range g.breakers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
