package circuit

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// clock is a manual test clock.
type clock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *clock { return &clock{now: time.Unix(1000, 0)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testOptions(clk *clock) Options {
	return Options{Window: 8, Threshold: 0.5, MinSamples: 4, OpenFor: time.Second, Now: clk.Now}
}

// call drives one admitted call through the breaker.
func call(t *testing.T, b *Breaker, ok bool) {
	t.Helper()
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow refused unexpectedly: %v", err)
	}
	if ok {
		b.Success()
	} else {
		b.Failure()
	}
}

func TestClosedUntilThreshold(t *testing.T) {
	clk := newClock()
	b := New(testOptions(clk))
	// Below MinSamples nothing trips, even at 100% failures.
	for i := 0; i < 3; i++ {
		call(t, b, false)
	}
	if b.State() != Closed {
		t.Fatalf("state after 3 failures = %v, want closed (MinSamples=4)", b.State())
	}
	// The 4th failure reaches MinSamples at a 100% rate: open.
	call(t, b, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
}

func TestSuccessesKeepItClosed(t *testing.T) {
	clk := newClock()
	b := New(testOptions(clk))
	// Fail every fourth call: the rolling rate peaks at 2/8 = 25%,
	// under the 50% threshold at every checkpoint.
	for i := 0; i < 16; i++ {
		call(t, b, i%4 != 1)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed at 25%% failures", b.State())
	}
}

func TestRollingWindowForgetsOldOutcomes(t *testing.T) {
	clk := newClock()
	o := testOptions(clk)
	o.Window, o.MinSamples, o.Threshold = 4, 4, 1.0 // trips only on an all-failure window
	b := New(o)
	// F F F S: the lone success blocks the all-failure condition.
	for i := 0; i < 3; i++ {
		call(t, b, false)
	}
	call(t, b, true)
	// Three more failures overwrite the three OLD failures in the ring;
	// the success (4th slot) is still inside, so still closed.
	for i := 0; i < 3; i++ {
		call(t, b, false)
		if b.State() != Closed {
			t.Fatalf("tripped while the success is still in the window")
		}
	}
	// The next failure ages the success out: window is all failures. Open.
	call(t, b, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open once the success aged out", b.State())
	}
}

func TestOpenRefusesFastThenHalfOpens(t *testing.T) {
	clk := newClock()
	b := New(testOptions(clk))
	for i := 0; i < 4; i++ {
		call(t, b, false)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Refused while the cool-down runs.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow during cool-down = %v, want ErrOpen", err)
	}
	if b.Refused() != 1 {
		t.Fatalf("Refused = %d, want 1", b.Refused())
	}
	// After the cool-down the next Allow is the half-open probe.
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after cool-down = %v, want probe admitted", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// A second call while the probe is out is refused.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second Allow in half-open = %v, want ErrOpen", err)
	}
	// Probe succeeds: closed, with a clean window (4 fresh failures
	// needed to trip again, not 1).
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	for i := 0; i < 3; i++ {
		call(t, b, false)
	}
	if b.State() != Closed {
		t.Fatalf("window not reset on close: tripped after %d failures", 3)
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newClock()
	b := New(testOptions(clk))
	for i := 0; i < 4; i++ {
		call(t, b, false)
	}
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
	// The cool-down restarted: still refused before it elapses again.
	clk.Advance(time.Second / 2)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow = %v, want ErrOpen (cool-down restarted)", err)
	}
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow = %v, want second probe admitted", err)
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestMultiProbeHalfOpen(t *testing.T) {
	clk := newClock()
	o := testOptions(clk)
	o.HalfOpenProbes = 2
	b := New(o)
	for i := 0; i < 4; i++ {
		call(t, b, false)
	}
	clk.Advance(time.Second)
	// Two concurrent probes admitted, a third refused.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("third probe = %v, want ErrOpen", err)
	}
	// One success is not enough to close with HalfOpenProbes=2.
	b.Success()
	if b.State() != HalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", b.State())
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", b.State())
	}
}

func TestOnOpenHook(t *testing.T) {
	clk := newClock()
	b := New(testOptions(clk))
	opened := 0
	b.OnOpen(func() { opened++ })
	for i := 0; i < 4; i++ {
		call(t, b, false)
	}
	if opened != 1 {
		t.Fatalf("OnOpen ran %d times, want 1", opened)
	}
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Failure()
	if opened != 2 {
		t.Fatalf("OnOpen ran %d times after reopen, want 2", opened)
	}
}

func TestThresholdAboveOneNeverOpens(t *testing.T) {
	clk := newClock()
	o := testOptions(clk)
	o.Threshold = 2 // accounting only
	b := New(o)
	for i := 0; i < 32; i++ {
		call(t, b, false)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed with Threshold > 1", b.State())
	}
}

func TestGroupPerKeyIsolationAndHook(t *testing.T) {
	clk := newClock()
	g := NewGroup(testOptions(clk))
	var openKeys []string
	g.OnOpen(func(key string) { openKeys = append(openKeys, key) })
	for i := 0; i < 4; i++ {
		call(t, g.Get("bad"), false)
		call(t, g.Get("good"), true)
	}
	if s := g.Get("bad").State(); s != Open {
		t.Fatalf("bad state = %v, want open", s)
	}
	if s := g.Get("good").State(); s != Closed {
		t.Fatalf("good state = %v, want closed", s)
	}
	if len(openKeys) != 1 || openKeys[0] != "bad" {
		t.Fatalf("OnOpen keys = %v, want [bad]", openKeys)
	}
	if keys := g.Keys(); len(keys) != 2 || keys[0] != "bad" || keys[1] != "good" {
		t.Fatalf("Keys = %v", keys)
	}
	if st := g.States(); st["bad"] != Open || st["good"] != Closed {
		t.Fatalf("States = %v", st)
	}
	// Get must return the same breaker, not a fresh one.
	if g.Get("bad") != g.Get("bad") {
		t.Fatal("Get not idempotent")
	}
}

func TestConcurrentUse(t *testing.T) {
	clk := newClock()
	b := New(Options{Window: 64, Threshold: 0.9, MinSamples: 64, OpenFor: time.Second, Now: clk.Now})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := b.Allow(); err == nil {
					if i%2 == 0 {
						b.Success()
					} else {
						b.Failure()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// 50% failures < 90% threshold: must still be closed, and the window
	// invariants must have held under concurrency (no panic, sane state).
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}
