package composer

import (
	"strings"
	"testing"

	"selfserv/internal/routing"
	"selfserv/internal/statechart"
)

// buildTravel reconstructs the paper's Fig 2 scenario through the fluent
// API, proving the editor can express the full demo.
func buildTravel() *Builder {
	b := New("TravelPlanner").
		Input("customer", "string").
		Input("destination", "string").
		Output("flightRef", "string").
		Output("carRef", "string")
	root := b.Root()

	par := root.Concurrent("bookings")

	flight := par.Region("flightRegion")
	flight.Basic("DFB", "DomesticFlightBooking", "book").
		Named("Domestic Flight Booking").
		In("customer", "customer").In("dest", "destination").
		Out("ref", "flightRef")
	flight.Basic("ITA", "InternationalTravel", "arrange").
		In("customer", "customer").In("dest", "destination").
		Out("ref", "flightRef")
	flight.StartIf("DFB", "domestic(destination)").
		StartIf("ITA", "not domestic(destination)").
		End("DFB").End("ITA")

	par.SingleServiceRegion("asRegion", "AS", "AttractionsSearch", "search").
		In("dest", "destination").
		Out("top", "major_attraction").Out("distance", "attractionDistance")

	par.SingleServiceRegion("abRegion", "AB", "AccommodationBooking", "book").
		In("customer", "customer").In("dest", "destination").
		Out("addr", "accommodation")

	root.Basic("CR", "CarRental", "rent").
		In("customer", "customer").In("addr", "accommodation").
		Out("car", "carRef")

	root.Start("bookings").
		TransitionIf("bookings", "CR", "not near(attractionDistance)").
		EndIf("bookings", "near(attractionDistance)").
		End("CR")
	return b
}

func TestBuildTravelValidatesAndCompiles(t *testing.T) {
	sc, err := buildTravel().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := len(sc.BasicStates()); got != 5 {
		t.Fatalf("basic states = %d", got)
	}
	plan, err := routing.Generate(sc)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan: %v", err)
	}
	// The AND-join condition must sit receiver-side on CR.
	for _, c := range plan.Tables["CR"].Preconditions {
		if !strings.Contains(c.Condition, "not near") {
			t.Fatalf("CR clause = %+v", c)
		}
	}
}

func TestXMLExportRoundTrips(t *testing.T) {
	data, err := buildTravel().XML()
	if err != nil {
		t.Fatalf("XML: %v", err)
	}
	back, err := statechart.UnmarshalXML(data)
	if err != nil {
		t.Fatalf("UnmarshalXML: %v", err)
	}
	if err := statechart.Validate(back); err != nil {
		t.Fatalf("round-tripped chart invalid: %v", err)
	}
	if back.Find("CR") == nil || back.Find("bookings").Kind != statechart.KindConcurrent {
		t.Fatal("structure lost in XML export")
	}
}

func TestSequenceConvenience(t *testing.T) {
	b := New("Pipeline").Input("x", "number").Output("x", "number")
	root := b.Root()
	root.Basic("a", "SvcA", "run").In("x", "x").Out("x", "x")
	root.Basic("bee", "SvcB", "run").In("x", "x").Out("x", "x")
	root.Basic("c", "SvcC", "run").In("x", "x").Out("x", "x")
	root.Sequence("a", "bee", "c")
	sc, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(sc.Root.Transitions) != 4 {
		t.Fatalf("transitions = %+v", sc.Root.Transitions)
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("empty sequence", func(t *testing.T) {
		b := New("Bad")
		b.Root().Sequence()
		if _, err := b.Build(); err == nil {
			t.Fatal("Build accepted empty Sequence")
		}
	})
	t.Run("invalid chart surfaces from validate", func(t *testing.T) {
		b := New("Bad2")
		b.Root().Basic("a", "", "run") // no service
		b.Root().Sequence("a")
		if _, err := b.Build(); err == nil {
			t.Fatal("Build accepted basic state without service")
		}
	})
	t.Run("MustBuild panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("MustBuild did not panic")
			}
		}()
		b := New("Bad3")
		b.Root().Sequence()
		b.MustBuild()
	})
}

func TestNestedCompound(t *testing.T) {
	b := New("Nested").Input("x", "number").Output("x", "number")
	root := b.Root()
	root.Basic("a", "SvcA", "run").In("x", "x").Out("x", "x")
	sub := root.Compound("sub")
	sub.Basic("u", "SvcU", "run").In("x", "x").Out("x", "x")
	sub.Sequence("u")
	root.Start("a").Transition("a", "sub").End("sub")
	sc, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	plan, err := routing.Generate(sc)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(plan.Tables) != 2 {
		t.Fatalf("tables = %d", len(plan.Tables))
	}
	// a's completion enters u; u's completion finishes the composite.
	found := false
	for _, c := range plan.Tables["u"].Preconditions {
		for _, src := range c.Sources {
			if src == "a" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("u preconditions = %+v", plan.Tables["u"].Preconditions)
	}
}

func TestScopePseudoIDs(t *testing.T) {
	b := New("X")
	root := b.Root()
	if root.InitialID() != "root.init" || root.FinalID() != "root.final" {
		t.Fatalf("pseudo IDs = %q %q", root.InitialID(), root.FinalID())
	}
}
