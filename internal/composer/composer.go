// Package composer is the programmatic equivalent of SELF-SERV's Service
// Editor: where the paper's composer draws a statechart in a GUI and the
// tool "translates it into an XML document", this package offers a fluent
// builder that produces the same statechart values (and the same XML via
// statechart.MarshalXML).
//
// Each compound scope implicitly owns an initial and a final pseudo-state
// named "<id>.init" / "<id>.final"; Start and End wire transitions from
// and to them, so composers never touch pseudo-states directly.
package composer

import (
	"fmt"

	"selfserv/internal/statechart"
)

// Builder accumulates a composite-service definition.
type Builder struct {
	chart *statechart.Statechart
	root  *Scope
	errs  []error
}

// New starts a definition for a composite service with the given name.
// The root scope's ID is "root".
func New(name string) *Builder {
	b := &Builder{
		chart: &statechart.Statechart{Name: name},
	}
	rootState := &statechart.State{ID: "root", Kind: statechart.KindCompound}
	b.chart.Root = rootState
	b.root = newScope(b, rootState)
	return b
}

// Input declares a composite input parameter.
func (b *Builder) Input(name, typ string) *Builder {
	b.chart.Inputs = append(b.chart.Inputs, statechart.Param{Name: name, Type: typ})
	return b
}

// Output declares a composite output parameter.
func (b *Builder) Output(name, typ string) *Builder {
	b.chart.Outputs = append(b.chart.Outputs, statechart.Param{Name: name, Type: typ})
	return b
}

// Root returns the root scope for adding states and transitions.
func (b *Builder) Root() *Scope { return b.root }

// Build finalizes the definition: pseudo-states are materialized, the
// chart is validated, and either the chart or the accumulated errors are
// returned.
func (b *Builder) Build() (*statechart.Statechart, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("composer: %q: %w", b.chart.Name, b.errs[0])
	}
	if err := statechart.Validate(b.chart); err != nil {
		return nil, err
	}
	return b.chart.Clone(), nil
}

// MustBuild is Build for tests and examples with known-good definitions.
func (b *Builder) MustBuild() *statechart.Statechart {
	sc, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sc
}

// XML finalizes the definition and renders the editor's XML document.
func (b *Builder) XML() ([]byte, error) {
	sc, err := b.Build()
	if err != nil {
		return nil, err
	}
	return statechart.MarshalXML(sc)
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Scope is a compound state under construction.
type Scope struct {
	b     *Builder
	state *statechart.State
	init  *statechart.State
	final *statechart.State
}

func newScope(b *Builder, state *statechart.State) *Scope {
	s := &Scope{b: b, state: state}
	s.init = &statechart.State{ID: state.ID + ".init", Kind: statechart.KindInitial}
	s.final = &statechart.State{ID: state.ID + ".final", Kind: statechart.KindFinal}
	state.Children = append(state.Children, s.init, s.final)
	return s
}

// InitialID returns the scope's implicit initial pseudo-state ID.
func (s *Scope) InitialID() string { return s.init.ID }

// FinalID returns the scope's implicit final pseudo-state ID.
func (s *Scope) FinalID() string { return s.final.ID }

// Basic adds a basic state bound to a service operation and returns a
// binding handle.
func (s *Scope) Basic(id, svc, operation string) *BasicState {
	st := &statechart.State{
		ID: id, Kind: statechart.KindBasic,
		Service: svc, Operation: operation,
	}
	s.state.Children = append(s.state.Children, st)
	return &BasicState{scope: s, state: st}
}

// Compound adds a nested compound state and returns its scope.
func (s *Scope) Compound(id string) *Scope {
	st := &statechart.State{ID: id, Kind: statechart.KindCompound}
	s.state.Children = append(s.state.Children, st)
	return newScope(s.b, st)
}

// Concurrent adds an AND-state and returns a handle for adding regions.
func (s *Scope) Concurrent(id string) *Concurrent {
	st := &statechart.State{ID: id, Kind: statechart.KindConcurrent}
	s.state.Children = append(s.state.Children, st)
	return &Concurrent{b: s.b, state: st}
}

// Transition wires from -> to unconditionally.
func (s *Scope) Transition(from, to string) *Scope {
	return s.TransitionIf(from, to, "")
}

// TransitionIf wires from -> to guarded by cond.
func (s *Scope) TransitionIf(from, to, cond string, actions ...statechart.Assignment) *Scope {
	s.state.Transitions = append(s.state.Transitions, statechart.Transition{
		From: from, To: to, Condition: cond, Actions: actions,
	})
	return s
}

// TransitionOn wires an ECA transition: from -> to fires when event has
// been raised (and cond, if any, holds on the merged variable bag).
func (s *Scope) TransitionOn(from, to, event, cond string, actions ...statechart.Assignment) *Scope {
	s.state.Transitions = append(s.state.Transitions, statechart.Transition{
		From: from, To: to, Event: event, Condition: cond, Actions: actions,
	})
	return s
}

// Start wires the scope's initial state to the given state.
func (s *Scope) Start(to string) *Scope { return s.StartIf(to, "") }

// StartIf wires the scope's initial state to the given state under cond.
func (s *Scope) StartIf(to, cond string) *Scope {
	return s.TransitionIf(s.init.ID, to, cond)
}

// End wires the given state to the scope's final state.
func (s *Scope) End(from string) *Scope { return s.EndIf(from, "") }

// EndIf wires the given state to the scope's final state under cond.
func (s *Scope) EndIf(from, cond string) *Scope {
	return s.TransitionIf(from, s.final.ID, cond)
}

// Sequence is a convenience: Start(ids[0]), chain each id to the next,
// End(last). IDs must already exist in the scope.
func (s *Scope) Sequence(ids ...string) *Scope {
	if len(ids) == 0 {
		s.b.errorf("Sequence in %q needs at least one state", s.state.ID)
		return s
	}
	s.Start(ids[0])
	for i := 0; i+1 < len(ids); i++ {
		s.Transition(ids[i], ids[i+1])
	}
	return s.End(ids[len(ids)-1])
}

// Concurrent is an AND-state under construction.
type Concurrent struct {
	b     *Builder
	state *statechart.State
}

// Region adds a region (a compound scope) to the AND-state.
func (c *Concurrent) Region(id string) *Scope {
	st := &statechart.State{ID: id, Kind: statechart.KindCompound}
	c.state.Children = append(c.state.Children, st)
	return newScope(c.b, st)
}

// SingleServiceRegion adds a region containing exactly one basic state —
// the common "run these services in parallel" shape.
func (c *Concurrent) SingleServiceRegion(regionID, stateID, svc, operation string) *BasicState {
	scope := c.Region(regionID)
	bs := scope.Basic(stateID, svc, operation)
	scope.Sequence(stateID)
	return bs
}

// BasicState is a binding handle for a basic state.
type BasicState struct {
	scope *Scope
	state *statechart.State
}

// ID returns the state's ID (for wiring transitions).
func (bs *BasicState) ID() string { return bs.state.ID }

// In binds an operation input parameter to a composite variable.
func (bs *BasicState) In(param, variable string) *BasicState {
	bs.state.Inputs = append(bs.state.Inputs, statechart.Binding{Param: param, Var: variable})
	return bs
}

// InExpr binds an operation input parameter to an expression over
// composite variables.
func (bs *BasicState) InExpr(param, expr string) *BasicState {
	bs.state.Inputs = append(bs.state.Inputs, statechart.Binding{Param: param, Expr: expr})
	return bs
}

// Out binds an operation output parameter to a composite variable.
func (bs *BasicState) Out(param, variable string) *BasicState {
	bs.state.Outputs = append(bs.state.Outputs, statechart.Binding{Param: param, Var: variable})
	return bs
}

// Named sets the display name.
func (bs *BasicState) Named(name string) *BasicState {
	bs.state.Name = name
	return bs
}
