package deployer

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selfserv/internal/routing"
	"selfserv/internal/workload"
)

// fakeHost records installs (and rollback uninstalls) without a network.
type fakeHost struct {
	addr        string
	installed   []string
	uninstalled []string
	failOn      string
}

func (f *fakeHost) Addr() string { return f.addr }

func (f *fakeHost) Install(composite string, t *routing.Table) error {
	if t.State == f.failOn {
		return fmt.Errorf("disk full")
	}
	f.installed = append(f.installed, composite+"/"+t.State)
	return nil
}

func (f *fakeHost) Uninstall(composite, state string, version uint64) {
	f.uninstalled = append(f.uninstalled, composite+"/"+state)
}

// live returns the installs that were not rolled back.
func (f *fakeHost) live() []string {
	gone := map[string]int{}
	for _, u := range f.uninstalled {
		gone[u]++
	}
	var out []string
	for _, in := range f.installed {
		if gone[in] > 0 {
			gone[in]--
			continue
		}
		out = append(out, in)
	}
	return out
}

func TestDeployInstallsEveryState(t *testing.T) {
	sc := workload.Travel()
	h := &fakeHost{addr: "node-1"}
	placement := Placement{}
	for _, svc := range sc.Services() {
		placement[svc] = []Installer{h}
	}
	dep, err := Deploy(sc, placement)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if len(dep.Hosts) != 5 || len(h.installed) != 5 {
		t.Fatalf("hosts = %v installed = %v", dep.Hosts, h.installed)
	}
	for state, addrs := range dep.Hosts {
		if len(addrs) != 1 || addrs[0] != "node-1" {
			t.Errorf("state %s on %v", state, addrs)
		}
	}
}

func TestDeployInstallsOnEveryReplica(t *testing.T) {
	sc := workload.Chain(2)
	h1 := &fakeHost{addr: "node-1"}
	h2 := &fakeHost{addr: "node-2"}
	dep, err := Deploy(sc, Placement{"svc1": {h1, h2}, "svc2": {h2}})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if len(h1.installed) != 1 || len(h2.installed) != 2 {
		t.Fatalf("installed: h1=%v h2=%v", h1.installed, h2.installed)
	}
	if got := dep.Hosts["s1"]; len(got) != 2 || got[0] != "node-1" || got[1] != "node-2" {
		t.Fatalf("s1 replicas = %v", got)
	}
}

func TestDeployChecksPlacementBeforeInstalling(t *testing.T) {
	sc := workload.Chain(3)
	h := &fakeHost{addr: "node-1"}
	// svc2 unplaced: nothing at all must be installed.
	_, err := Deploy(sc, Placement{"svc1": {h}, "svc3": {h}})
	if err == nil || !strings.Contains(err.Error(), "no placement") {
		t.Fatalf("err = %v", err)
	}
	if len(h.installed) != 0 {
		t.Fatalf("partial install happened: %v", h.installed)
	}
}

func TestDeploySurfacesInstallErrors(t *testing.T) {
	sc := workload.Chain(2)
	h := &fakeHost{addr: "node-1", failOn: "s2"}
	_, err := Deploy(sc, Placement{"svc1": {h}, "svc2": {h}})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v", err)
	}
}

// TestDeployRollsBackOnFailure pins the no-side-effects contract: when
// a replica's install fails mid-deployment, every state installed up to
// that point — across ALL hosts — is uninstalled again, newest first.
func TestDeployRollsBackOnFailure(t *testing.T) {
	sc := workload.Chain(3)
	h1 := &fakeHost{addr: "node-1"}
	h2 := &fakeHost{addr: "node-2", failOn: "s3"}
	_, err := Deploy(sc, Placement{"svc1": {h1, h2}, "svc2": {h1}, "svc3": {h2}})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v", err)
	}
	if live := h1.live(); len(live) != 0 {
		t.Fatalf("node-1 still has %v after rollback", live)
	}
	if live := h2.live(); len(live) != 0 {
		t.Fatalf("node-2 still has %v after rollback", live)
	}
	// Reverse install order: the last successful install is the first
	// rolled back.
	var all []string
	all = append(all, h1.uninstalled...)
	all = append(all, h2.uninstalled...)
	if len(all) != len(h1.installed)+len(h2.installed) {
		t.Fatalf("uninstalled %d of %d installs", len(all), len(h1.installed)+len(h2.installed))
	}
}

func TestDeployRejectsInvalidChart(t *testing.T) {
	sc := workload.Chain(1)
	sc.Root.Children[1].Operation = ""
	if _, err := Deploy(sc, Placement{}); err == nil {
		t.Fatal("invalid chart deployed")
	}
}

func TestWriteAndReadPlanFiles(t *testing.T) {
	dir := t.TempDir()
	plan, err := routing.Generate(workload.Travel())
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePlanFiles(dir, plan); err != nil {
		t.Fatalf("WritePlanFiles: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 1 plan file + 5 table files.
	if len(entries) != 6 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("files = %v", names)
	}
	back, err := ReadPlanFile(filepath.Join(dir, "TravelPlanner.plan.xml"))
	if err != nil {
		t.Fatalf("ReadPlanFile: %v", err)
	}
	if back.Composite != "TravelPlanner" || len(back.Tables) != 5 {
		t.Fatalf("plan = %+v", back)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped plan: %v", err)
	}
	// Individual table file parses too.
	data, err := os.ReadFile(filepath.Join(dir, "TravelPlanner.CR.table.xml"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := routing.UnmarshalTable(data)
	if err != nil || tbl.State != "CR" {
		t.Fatalf("table = %+v, %v", tbl, err)
	}
}

func TestReadPlanFileMissing(t *testing.T) {
	if _, err := ReadPlanFile(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}
