// Package deployer implements the service deployer module of the SELF-
// SERV service manager: it compiles a composite service's statechart into
// routing tables (package routing) and uploads each state's table onto
// the host of the corresponding component service (§3: "generating the
// control-flow routing tables of each state ... and uploading these
// tables into the hosts of the component services").
package deployer

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"selfserv/internal/routing"
	"selfserv/internal/statechart"
)

// Installer is one deployment target — a node that can accept a routing
// table for a state whose component service it hosts. engine.Host
// implements it.
type Installer interface {
	// Install registers the state's coordinator on the node.
	Install(composite string, table *routing.Table) error
	// Uninstall removes one plan version of the state's coordinator
	// again (version 0 is the unversioned namespace). Deploy uses it to
	// roll back the already-installed states of a failed deployment;
	// uninstalling a state that was never installed must be a no-op.
	Uninstall(composite, state string, version uint64)
	// Addr identifies the node (for error messages and reports).
	Addr() string
}

// CompiledInstaller is an Installer that can accept the deployer's
// already-compiled table directly, skipping a second parse. engine.Host
// implements it; remote installers (hostapi.Client) ship the declarative
// XML and compile on the far side.
type CompiledInstaller interface {
	InstallCompiled(composite string, table *routing.CompiledTable) error
}

// Placement maps component-service names to the replica set hosting
// them. Every service referenced by the statechart must have at least
// one replica; each state's routing table is installed on EVERY replica
// of its service, so any replica can coordinate any instance and the
// engine's deterministic (instance, tenant) routing picks which one
// does (see internal/placement and docs/scaleout.md).
type Placement map[string][]Installer

// Single places every service on one node — the pre-scale-out
// convenience constructor for the common one-host-per-service case.
func Single(hosts map[string]Installer) Placement {
	p := make(Placement, len(hosts))
	for svc, h := range hosts {
		p[svc] = []Installer{h}
	}
	return p
}

// Deployment is the result of a successful deploy.
type Deployment struct {
	// Plan is the declarative routing plan.
	Plan *routing.Plan
	// Compiled is the plan's compiled execution form: every guard and
	// action pre-parsed, precondition sources interned. Wrappers and the
	// centralized baseline interpret this shared artifact directly.
	Compiled *routing.CompiledPlan
	// Hosts maps each state ID to the replica addresses it was installed
	// on (sorted by install order, which follows the placement's slice
	// order).
	Hosts map[string][]string
}

// Deploy validates and compiles the statechart, then uploads each state's
// routing table to every replica host of its component service.
// Compilation — including parsing every guard, precondition, and action
// expression — happens HERE, before any host is touched: deployment is
// the only place a parse error can surface. Deploy fails without side
// effects: if compilation fails or any service is unplaced nothing is
// touched, and if any replica's Install errors mid-way, the states
// already installed are rolled back (Installer.Uninstall, reverse
// order) before the error is returned.
//
// Redeploys are version-scoped: DeployVersion stamps every table with
// the given plan version, installs land under (composite, state,
// version) keys, and rollback uninstalls ONLY that version — a failed
// redeploy of an already-live composite leaves the previous version's
// coordinators untouched and serving. (Before versioning, rollback
// uninstalled by (composite, state) and tore down the live coordinators
// it had replaced up to the failure point.)
func Deploy(sc *statechart.Statechart, placement Placement) (*Deployment, error) {
	return DeployVersion(sc, placement, 0)
}

// DeployVersion is Deploy with an explicit plan version (0 = the
// unversioned legacy namespace). core.Platform allocates a fresh,
// monotonically increasing version per (re)deploy of a composite.
func DeployVersion(sc *statechart.Statechart, placement Placement, version uint64) (*Deployment, error) {
	plan, err := routing.Generate(sc)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	plan.SetVersion(version)
	compiled, err := routing.CompilePlan(plan)
	if err != nil {
		return nil, err
	}
	// Check placement before touching any host.
	ids := make([]string, 0, len(plan.Tables))
	for id := range plan.Tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		tbl := plan.Tables[id]
		if len(placement[tbl.Service]) == 0 {
			return nil, fmt.Errorf("deployer: composite %q: service %q (state %q) has no placement", sc.Name, tbl.Service, id)
		}
		for _, host := range placement[tbl.Service] {
			if host == nil {
				return nil, fmt.Errorf("deployer: composite %q: service %q (state %q) has a nil replica", sc.Name, tbl.Service, id)
			}
		}
	}
	// installed records every (state, host) pair that succeeded, in
	// order, so a failure can unwind them newest-first.
	type installStep struct {
		id   string
		host Installer
	}
	var installed []installStep
	rollback := func() {
		for i := len(installed) - 1; i >= 0; i-- {
			installed[i].host.Uninstall(sc.Name, installed[i].id, version)
		}
	}
	dep := &Deployment{Plan: plan, Compiled: compiled, Hosts: map[string][]string{}}
	for _, id := range ids {
		tbl := plan.Tables[id]
		for _, host := range placement[tbl.Service] {
			var err error
			if ci, ok := host.(CompiledInstaller); ok {
				// Hand the host the table we already compiled: one parse
				// per deployment, shared by every instance and replica.
				err = ci.InstallCompiled(sc.Name, compiled.Tables[id])
			} else {
				err = host.Install(sc.Name, tbl)
			}
			if err != nil {
				rollback()
				return nil, fmt.Errorf("deployer: install state %q on %s: %w", id, host.Addr(), err)
			}
			installed = append(installed, installStep{id, host})
			dep.Hosts[id] = append(dep.Hosts[id], host.Addr())
		}
	}
	return dep, nil
}

// WritePlanFiles persists the plan and its per-state tables as XML files
// under dir, mirroring the paper's "routing tables are stored in plain
// files" default. The plan goes to <composite>.plan.xml and each table to
// <composite>.<state>.table.xml. The directory is created if needed.
func WritePlanFiles(dir string, plan *routing.Plan) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("deployer: %w", err)
	}
	data, err := routing.MarshalPlan(plan)
	if err != nil {
		return err
	}
	planPath := filepath.Join(dir, plan.Composite+".plan.xml")
	if err := os.WriteFile(planPath, data, 0o644); err != nil {
		return fmt.Errorf("deployer: %w", err)
	}
	ids := make([]string, 0, len(plan.Tables))
	for id := range plan.Tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		data, err := routing.MarshalTable(plan.Tables[id])
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("%s.%s.table.xml", plan.Composite, id))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("deployer: %w", err)
		}
	}
	return nil
}

// ReadPlanFile loads a plan persisted by WritePlanFiles.
func ReadPlanFile(path string) (*routing.Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("deployer: %w", err)
	}
	defer f.Close()
	return routing.ReadPlan(f)
}
