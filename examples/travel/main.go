// Travel runs the paper's §4 demo scenario end-to-end over real TCP
// sockets on the loopback interface: five component services on five
// hosts (Accommodation Booking backed by a three-member community),
// peer-to-peer coordination per the deployed routing tables.
//
//	go run ./examples/travel [-dest sydney|melbourne|tokyo|paris] [-customer alice]
//
// Watch the peer-to-peer message flow with -trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"selfserv/internal/core"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

func main() {
	dest := flag.String("dest", "melbourne", "travel destination")
	customer := flag.String("customer", "alice", "customer name")
	trace := flag.Bool("trace", false, "log coordinator activity")
	flag.Parse()
	if err := Run(os.Stdout, *dest, *customer, *trace); err != nil {
		log.Fatal(err)
	}
}

// Run executes the travel scenario over loopback TCP, narrating to w.
func Run(w io.Writer, dest, customer string, trace bool) error {
	net := transport.NewTCP()
	opts := core.Options{
		Network: net,
		Funcs:   workload.TravelGuards(),
	}
	if trace {
		opts.HostOptions.Logf = log.Printf
		opts.HostOptions.Funcs = opts.Funcs
	}
	platform := core.New(opts)
	defer platform.Close()
	defer net.Close()

	// The pool of services: four elementary + the accommodation community.
	if _, err := workload.RegisterTravelProviders(platform.Registry(), service.SimulatedOptions{
		BaseLatency: 5 * time.Millisecond,
		Jitter:      3 * time.Millisecond,
	}); err != nil {
		return err
	}

	// One host (TCP listener) per component service — the paper's
	// topology, where every provider runs its own Coordinator.
	sc := workload.Travel()
	for _, svc := range sc.Services() {
		h, err := platform.AddHost("127.0.0.1:0")
		if err != nil {
			return err
		}
		prov, err := platform.Registry().Lookup(svc)
		if err != nil {
			return err
		}
		platform.RegisterService(h, prov)
		fmt.Fprintf(w, "host %-22s serves %s\n", h.Addr(), svc)
	}

	comp, err := platform.Deploy(sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ndeployed %q; wrapper at %s\n\n", comp.Name(), comp.Wrapper().Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	out, err := comp.Execute(ctx, workload.TravelRequest(customer, dest, true))
	if err != nil {
		return fmt.Errorf("execution failed: %w", err)
	}
	elapsed := time.Since(start)

	fmt.Fprintln(w, "execution result:")
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-18s %s\n", k, out[k])
	}
	if out["carRef"] == "" {
		fmt.Fprintln(w, "  (no car rental: the major attraction is near the accommodation)")
	}
	fmt.Fprintf(w, "\ncompleted in %v\n", elapsed)

	// Show the peer-to-peer traffic distribution.
	stats := net.Stats()
	fmt.Fprintln(w, "\nper-node message traffic (peer-to-peer coordination):")
	addrs := make([]string, 0, len(stats.Nodes))
	for a := range stats.Nodes {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		ns := stats.Nodes[a]
		fmt.Fprintf(w, "  %-22s in=%-3d out=%-3d frames-out=%-3d bytes=%d\n",
			a, ns.MsgsIn, ns.MsgsOut, ns.FramesOut, ns.BytesIn+ns.BytesOut)
	}
	total := stats.Total()
	fmt.Fprintf(w, "total: %d messages in %d wire frames (queue-depth=%d send-blocked=%d reconnects=%d)\n",
		total.MsgsOut, total.FramesOut, total.QueueDepth, total.SendBlocked, total.Reconnects)
	return nil
}
