package main

// End-to-end smoke test: the paper's §4 travel scenario over real
// loopback TCP sockets, peer-to-peer, must complete and report its
// booking references and traffic distribution.

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := Run(&out, "melbourne", "alice", false); err != nil {
		t.Fatalf("Run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"deployed \"TravelPlanner\"",
		"execution result:",
		"completed in",
		"per-node message traffic",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSydney(t *testing.T) {
	var out bytes.Buffer
	if err := Run(&out, "sydney", "bob", false); err != nil {
		t.Fatalf("Run(sydney): %v\noutput:\n%s", err, out.String())
	}
}
