package main

// End-to-end smoke tests for the community scenario across delegation
// policies: requests distribute over the members, the fast member's
// departure shifts traffic, and an unknown policy is rejected.

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"qos", "random", "round-robin", "least-loaded", "cheapest"} {
		t.Run(policy, func(t *testing.T) {
			var out bytes.Buffer
			if err := Run(&out, policy, 60); err != nil {
				t.Fatalf("Run(%s): %v\noutput:\n%s", policy, err, out.String())
			}
			got := out.String()
			for _, want := range []string{
				"delegation distribution:",
				"FastCheap leaves the community",
			} {
				if !strings.Contains(got, want) {
					t.Errorf("output missing %q:\n%s", want, got)
				}
			}
		})
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	var out bytes.Buffer
	if err := Run(&out, "no-such-policy", 10); err == nil {
		t.Fatal("Run with an unknown policy succeeded, want error")
	}
}
