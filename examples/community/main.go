// Community demonstrates service communities (§2): a pool of alternative
// accommodation providers behind one name, with runtime delegation by
// QoS-aware policies, membership predicates, dynamic join/leave, and
// failover.
//
//	go run ./examples/community [-policy qos|random|round-robin|least-loaded|cheapest] [-requests 200]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"selfserv/internal/community"
	"selfserv/internal/service"
)

func main() {
	policyName := flag.String("policy", "qos", "delegation policy")
	requests := flag.Int("requests", 200, "number of booking requests")
	flag.Parse()
	if err := Run(os.Stdout, *policyName, *requests); err != nil {
		log.Fatal(err)
	}
}

// Run executes the community scenario under the named delegation
// policy, narrating to w.
func Run(w io.Writer, policyName string, requests int) error {
	policy, err := community.PolicyByName(policyName, 42)
	if err != nil {
		return err
	}
	comm := community.New("AccommodationBooking", community.Options{
		Policy:   policy,
		Failover: 1,
	})

	// Heterogeneous members: different latency, reliability, cost, and a
	// membership predicate restricting one hotel to Sydney bookings.
	members := []struct {
		brand     string
		latency   time.Duration
		failRate  float64
		cost      float64
		predicate string
	}{
		{"FastCheap", 5 * time.Millisecond, 0.0, 1, ""},
		{"SlowPremium", 60 * time.Millisecond, 0.0, 6, ""},
		{"FlakyBudget", 8 * time.Millisecond, 0.4, 1, ""},
		{"SydneyOnly", 6 * time.Millisecond, 0.0, 2, "req.dest = 'sydney'"},
	}
	for i, m := range members {
		err := comm.Join(&community.Member{
			Provider: service.NewAccommodationBooking(m.brand, service.SimulatedOptions{
				BaseLatency: m.latency,
				FailRate:    m.failRate,
				Seed:        int64(i + 1),
			}),
			Cost:      m.cost,
			Predicate: m.predicate,
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "community %q with members %v, policy %s\n\n",
		comm.Name(), comm.Members(), policy.Name())

	ctx := context.Background()
	counts := map[string]int{}
	failures := 0
	var totalLatency time.Duration
	for i := 0; i < requests; i++ {
		dest := "sydney"
		if i%3 == 0 {
			dest = "melbourne"
		}
		start := time.Now()
		resp, err := comm.Invoke(ctx, service.Request{
			Service:   "AccommodationBooking",
			Operation: "book",
			Params:    map[string]string{"customer": fmt.Sprintf("u%03d", i), "dest": dest},
		})
		totalLatency += time.Since(start)
		if err != nil {
			failures++
			continue
		}
		counts[strings.Fields(resp.Outputs["addr"])[0]]++
	}

	fmt.Fprintln(w, "delegation distribution:")
	for _, m := range comm.Members() {
		fmt.Fprintf(w, "  %-12s %4d bookings   [%s]\n", m, counts[m], comm.History().Snapshot(m))
	}
	fmt.Fprintf(w, "\nfailures: %d / %d\n", failures, requests)
	fmt.Fprintf(w, "mean latency: %v\n", (totalLatency / time.Duration(requests)).Round(time.Microsecond))

	// Dynamic membership: the fast member leaves, traffic shifts.
	fmt.Fprintln(w, "\nFastCheap leaves the community; 50 more requests:")
	comm.Leave("FastCheap")
	counts2 := map[string]int{}
	for i := 0; i < 50; i++ {
		resp, err := comm.Invoke(ctx, service.Request{
			Service: "AccommodationBooking", Operation: "book",
			Params: map[string]string{"customer": "late", "dest": "sydney"},
		})
		if err != nil {
			continue
		}
		counts2[strings.Fields(resp.Outputs["addr"])[0]]++
	}
	for _, m := range comm.Members() {
		fmt.Fprintf(w, "  %-12s %4d bookings\n", m, counts2[m])
	}
	return nil
}
