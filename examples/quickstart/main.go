// Quickstart: define, deploy, and execute a two-step composite service in
// one process. This is the smallest end-to-end SELF-SERV program:
//
//	go run ./examples/quickstart
//
// It composes a geocoding step and a weather step into a "WeatherByCity"
// composite, deploys it peer-to-peer across two hosts, and executes it.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"selfserv/internal/composer"
	"selfserv/internal/core"
	"selfserv/internal/service"
)

func main() {
	if err := Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Run executes the whole scenario, writing its narration to w. It
// returns the first error instead of exiting, so tests can drive it.
func Run(w io.Writer) error {
	// 1. A platform with an in-memory network (single process).
	platform := core.New(core.Options{})
	defer platform.Close()

	// 2. Two elementary services on two hosts.
	geocoder := service.NewSimulated("Geocoder", service.SimulatedOptions{BaseLatency: 2 * time.Millisecond})
	geocoder.Handle("locate", func(_ context.Context, in map[string]string) (map[string]string, error) {
		coords := map[string]string{
			"sydney": "-33.87,151.21",
			"tokyo":  "35.68,139.69",
		}
		c, ok := coords[in["city"]]
		if !ok {
			return nil, fmt.Errorf("unknown city %q", in["city"])
		}
		return map[string]string{"coords": c}, nil
	})

	weather := service.NewSimulated("Weather", service.SimulatedOptions{BaseLatency: 2 * time.Millisecond})
	weather.Handle("forecast", func(_ context.Context, in map[string]string) (map[string]string, error) {
		return map[string]string{"forecast": "sunny at " + in["coords"]}, nil
	})

	host1, err := platform.AddHost("host-1")
	if err != nil {
		return err
	}
	host2, err := platform.AddHost("host-2")
	if err != nil {
		return err
	}
	platform.RegisterService(host1, geocoder)
	platform.RegisterService(host2, weather)

	// 3. Declaratively compose them: locate -> forecast.
	b := composer.New("WeatherByCity").
		Input("city", "string").
		Output("forecast", "string")
	root := b.Root()
	root.Basic("locate", "Geocoder", "locate").
		In("city", "city").Out("coords", "coords")
	root.Basic("forecast", "Weather", "forecast").
		In("coords", "coords").Out("forecast", "forecast")
	root.Sequence("locate", "forecast")

	chart, err := b.Build()
	if err != nil {
		return err
	}

	// 4. Deploy: routing tables are compiled and installed on the hosts.
	comp, err := platform.Deploy(chart)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "deployed routing plan:")
	fmt.Fprintln(w, comp.Plan())

	// 5. Execute instances.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, city := range []string{"sydney", "tokyo"} {
		out, err := comp.Execute(ctx, map[string]string{"city": city})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s -> %s\n", city, out["forecast"])
	}
	return nil
}
