package main

// End-to-end smoke test: the quickstart scenario deploys and executes
// on the in-memory network and produces the narrated results.

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := Run(&out); err != nil {
		t.Fatalf("Run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"deployed routing plan:",
		"sydney -> sunny at -33.87,151.21",
		"tokyo -> sunny at 35.68,139.69",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
