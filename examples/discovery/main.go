// Discovery reproduces the paper's Figure 3 flow over real HTTP: start a
// UDDI registry, expose providers as SOAP endpoints with generated WSDL
// descriptions, publish them, search the registry like the demo's Search
// panel, and execute an operation of a located service.
//
//	go run ./examples/discovery
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"

	"selfserv/internal/discovery"
	"selfserv/internal/service"
	"selfserv/internal/uddi"
)

func main() {
	if err := Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Run executes the publish/search/execute flow over a loopback HTTP
// server, narrating to w.
func Run(w io.Writer) error {
	// 1. The UDDI registry plus provider endpoints, all on one HTTP server
	//    (in production each provider hosts its own).
	mux := http.NewServeMux()
	registry := uddi.NewRegistry()
	uddi.Serve(registry, mux)

	providers := []service.Provider{
		service.NewDomesticFlightBooking(service.SimulatedOptions{}),
		service.NewInternationalTravel(service.SimulatedOptions{}),
		service.NewAttractionsSearch(service.SimulatedOptions{}),
	}
	for _, p := range providers {
		mux.Handle("/soap/"+p.Name(), discovery.ServiceEndpoint(p))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	server := &http.Server{Handler: mux}
	go server.Serve(ln)
	defer server.Close()
	fmt.Fprintf(w, "UDDI registry at %s/uddi\n\n", base)

	// WSDL descriptions need the final URLs ("placing the WSDL
	// descriptions so that they can be retrieved using public URLs").
	for _, p := range providers {
		h, err := discovery.WSDLEndpoint(p, base+"/soap/"+p.Name())
		if err != nil {
			return err
		}
		mux.Handle("/wsdl/"+p.Name(), h)
	}

	// 2. Publish: each provider registers business + service + binding.
	engine := discovery.NewEngine(base + "/uddi")
	owners := map[string]string{
		"DomesticFlightBooking": "QF Airlines",
		"InternationalTravel":   "Globe Travel",
		"AttractionsSearch":     "CitySights",
	}
	for _, p := range providers {
		reg, err := engine.Register(discovery.Publication{
			ProviderName:    owners[p.Name()],
			ServiceName:     p.Name(),
			Description:     "travel scenario component",
			Endpoint:        base + "/soap/" + p.Name(),
			WSDLURL:         base + "/wsdl/" + p.Name(),
			InterfaceTModel: p.Name() + "-interface",
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "published %-22s business=%s service=%s\n", p.Name(), reg.BusinessKey, reg.ServiceKey)
	}

	// 3. Search: the end user's Search panel — by name fragment.
	fmt.Fprintln(w, "\nsearch 'Flight' (contains):")
	hits, err := engine.Locate(uddi.ServiceQuery{NamePattern: "Flight", Qualifier: uddi.MatchContains})
	if err != nil {
		return err
	}
	for _, h := range hits {
		fmt.Fprintf(w, "  %-22s by %-14s endpoint=%s\n", h.Service.Name, h.Provider.Name, h.Endpoint)
		if h.Definition != nil {
			for _, op := range h.Definition.Operations {
				fmt.Fprintf(w, "      operation: %s\n", op.Name)
			}
		}
	}

	// 4. Execute: the Execute button — supply parameter values and run.
	loc, err := engine.LocateOne("DomesticFlightBooking")
	if err != nil {
		return err
	}
	out, err := engine.Invoke(context.Background(), loc, "book", map[string]string{
		"customer": "alice",
		"dest":     "sydney",
		"depart":   "2026-07-01",
		"return":   "2026-07-14",
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nexecuted DomesticFlightBooking.book -> ref=%s\n", out["ref"])

	// A failed execution surfaces as a SOAP fault.
	if _, err := engine.Invoke(context.Background(), loc, "book", map[string]string{
		"customer": "alice", "dest": "tokyo",
	}); err != nil {
		fmt.Fprintf(w, "expected fault for tokyo via domestic booking: %v\n", err)
	}
	return nil
}
