package main

// End-to-end smoke test: publish three providers to the loopback UDDI
// registry, search it, and execute an operation of a located service —
// the paper's Figure 3 flow over real HTTP.

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := Run(&out); err != nil {
		t.Fatalf("Run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"published DomesticFlightBooking",
		"published InternationalTravel",
		"published AttractionsSearch",
		"search 'Flight' (contains):",
		"executed DomesticFlightBooking.book -> ref=",
		"expected fault for tokyo",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
