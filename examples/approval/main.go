// Approval demonstrates ECA events (the "E" of the rules on statechart
// transitions): a purchasing composite whose second step waits for a
// human "confirm" event whose payload carries the spending limit checked
// by the transition guard.
//
//	go run ./examples/approval [-limit 200]
//
// The flow: quote -> (on confirm [price <= limit]) purchase -> done. The
// instance blocks after quoting until the event arrives; an insufficient
// limit leaves it waiting (run with -limit 50 and watch the timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"selfserv/internal/composer"
	"selfserv/internal/core"
	"selfserv/internal/service"
)

func main() {
	limit := flag.String("limit", "200", "approval limit carried by the confirm event")
	flag.Parse()
	if err := Run(os.Stdout, *limit, 3*time.Second); err != nil {
		log.Fatal(err)
	}
}

// Run executes the approval scenario with the given limit, narrating to
// w. timeout bounds how long the instance may wait for completion after
// the confirm event; a guard-rejected approval is narrated, not an
// error (it is the scenario's documented outcome for a low limit).
func Run(w io.Writer, limit string, timeout time.Duration) error {
	platform := core.New(core.Options{})
	defer platform.Close()

	quoter := service.NewSimulated("Quoter", service.SimulatedOptions{BaseLatency: 5 * time.Millisecond})
	quoter.Handle("quote", func(_ context.Context, in map[string]string) (map[string]string, error) {
		return map[string]string{"price": "120"}, nil
	})
	purchaser := service.NewSimulated("Purchaser", service.SimulatedOptions{BaseLatency: 5 * time.Millisecond})
	purchaser.Handle("buy", func(_ context.Context, in map[string]string) (map[string]string, error) {
		return map[string]string{"order": "ORD-" + in["item"]}, nil
	})
	host, err := platform.AddHost("host-1")
	if err != nil {
		return err
	}
	platform.RegisterService(host, quoter)
	platform.RegisterService(host, purchaser)

	b := composer.New("Purchasing").
		Input("item", "string").
		Output("order", "string")
	root := b.Root()
	root.Basic("quote", "Quoter", "quote").
		In("item", "item").Out("price", "price")
	root.Basic("purchase", "Purchaser", "buy").
		In("item", "item").Out("order", "order")
	root.Start("quote").
		TransitionOn("quote", "purchase", "confirm", "price <= limit").
		End("purchase")

	comp, err := platform.Deploy(b.MustBuild())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "deployed %q; events: %v, confirm subscribers: %v\n\n",
		comp.Name(), comp.Plan().Events(), comp.Plan().EventSubscribers("confirm"))

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	done := make(chan struct{})
	var out map[string]string
	var execErr error
	go func() {
		defer close(done)
		out, execErr = comp.ExecuteInstance(ctx, "po-1001", map[string]string{"item": "standing-desk"})
	}()

	fmt.Fprintln(w, "instance po-1001 started; quoting...")
	time.Sleep(100 * time.Millisecond)
	fmt.Fprintf(w, "raising confirm event with limit=%s (quoted price is 120)\n", limit)
	if err := comp.RaiseEvent(ctx, "po-1001", "confirm", map[string]string{
		"limit":    limit,
		"approver": "cfo",
	}); err != nil {
		return err
	}

	<-done
	if execErr != nil {
		fmt.Fprintf(w, "execution did not complete: %v\n", execErr)
		fmt.Fprintln(w, "(the guard price <= limit rejected the approval; the instance waited until timeout)")
		return nil
	}
	fmt.Fprintf(w, "\napproved and purchased: order=%s\n", out["order"])
	return nil
}
