package main

// End-to-end smoke tests for the ECA-event scenario: a sufficient limit
// approves and purchases; an insufficient one leaves the instance
// waiting until its (shortened) timeout, narrated as a rejection.

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRunApproved(t *testing.T) {
	var out bytes.Buffer
	if err := Run(&out, "200", 5*time.Second); err != nil {
		t.Fatalf("Run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "approved and purchased: order=ORD-standing-desk") {
		t.Errorf("output missing the approval:\n%s", out.String())
	}
}

func TestRunRejectedByGuard(t *testing.T) {
	var out bytes.Buffer
	// limit 50 < price 120: the guard rejects, the instance waits out
	// its deadline, and Run narrates the rejection without failing.
	if err := Run(&out, "50", 500*time.Millisecond); err != nil {
		t.Fatalf("Run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "execution did not complete") {
		t.Errorf("output missing the rejection narration:\n%s", out.String())
	}
}
