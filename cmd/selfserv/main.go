// Selfserv is the SELF-SERV deployment tool: the command-line face of the
// service editor's "analyse" step and the service deployer.
//
// Subcommands:
//
//	selfserv validate <chart.xml>
//	    Check well-formedness, list every problem.
//
//	selfserv explain <chart.xml>
//	    Compile and print the routing plan (preconditions and
//	    postprocessings per state).
//
//	selfserv compile <chart.xml> -out <dir>
//	    Compile and write the plan plus per-state table XML files (the
//	    paper's "routing tables stored in plain files").
//
//	selfserv deploy <chart.xml> -host Service=http://adminAddr ...
//	    Generate routing tables and upload each one to the hostd daemon
//	    serving its component service; then push the peer directory.
//
//	selfserv run <chart.xml> -host Service=http://adminAddr ... -in k=v ...
//	    Deploy (as above), start a wrapper, execute one instance with the
//	    given inputs, and print the result variables.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"selfserv/internal/deployer"
	"selfserv/internal/engine"
	"selfserv/internal/hostapi"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "validate":
		err = cmdValidate(args)
	case "explain":
		err = cmdExplain(args)
	case "compile":
		err = cmdCompile(args)
	case "deploy":
		err = cmdDeploy(args)
	case "run":
		err = cmdRun(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfserv:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: selfserv <validate|explain|compile|deploy|run> [flags] <chart.xml>")
	os.Exit(2)
}

// parseWithFile parses fs over args, accepting the single positional
// chart-file argument either before or after the flags.
func parseWithFile(fs *flag.FlagSet, args []string) (string, error) {
	var file string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	switch {
	case file == "" && fs.NArg() == 1:
		file = fs.Arg(0)
	case file != "" && fs.NArg() == 0:
	default:
		return "", fmt.Errorf("expected exactly one chart file argument")
	}
	return file, nil
}

func loadChart(path string) (*statechart.Statechart, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return statechart.ReadXML(f)
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	sc, err := loadChart(file)
	if err != nil {
		return err
	}
	if err := statechart.Validate(sc); err != nil {
		return err
	}
	fmt.Printf("%s: valid (%d states, %d basic, depth %d, services %v)\n",
		sc.Name, sc.CountStates(), len(sc.BasicStates()), sc.Depth(), sc.Services())
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	sc, err := loadChart(file)
	if err != nil {
		return err
	}
	plan, err := routing.Generate(sc)
	if err != nil {
		return err
	}
	fmt.Print(plan)
	return nil
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	out := fs.String("out", "tables", "output directory for routing-table files")
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	sc, err := loadChart(file)
	if err != nil {
		return err
	}
	plan, err := routing.Generate(sc)
	if err != nil {
		return err
	}
	if err := deployer.WritePlanFiles(*out, plan); err != nil {
		return err
	}
	fmt.Printf("wrote %s/%s.plan.xml and %d table files\n", *out, plan.Composite, len(plan.Tables))
	return nil
}

// hostFlags collects repeated -host Service=adminURL mappings. Repeating
// a service maps it to MULTIPLE daemons — replica hosts: each state of
// that service is installed on all of them and the engine routes every
// (instance, tenant) key to a deterministic replica.
type hostFlags map[string][]string

func (h hostFlags) String() string { return fmt.Sprint(map[string][]string(h)) }

func (h hostFlags) Set(v string) error {
	svc, url, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want Service=adminURL, got %q", v)
	}
	h[svc] = append(h[svc], url)
	return nil
}

// kvFlags collects repeated k=v pairs (last write wins).
type kvFlags map[string]string

func (h kvFlags) String() string { return fmt.Sprint(map[string]string(h)) }

func (h kvFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want k=v, got %q", v)
	}
	h[k] = val
	return nil
}

// resolveRemote builds remote installers for every component service's
// replica set, dialing each distinct daemon once.
func resolveRemote(sc *statechart.Statechart, hosts hostFlags) (deployer.Placement, map[string]*hostapi.RemoteInstaller, error) {
	placement := deployer.Placement{}
	installers := map[string]*hostapi.RemoteInstaller{}
	for _, svc := range sc.Services() {
		adminURLs := hosts[svc]
		if len(adminURLs) == 0 {
			return nil, nil, fmt.Errorf("no -host mapping for service %q", svc)
		}
		for _, adminURL := range adminURLs {
			ri, ok := installers[adminURL]
			if !ok {
				var err error
				ri, err = hostapi.NewRemoteInstaller(adminURL)
				if err != nil {
					return nil, nil, err
				}
				installers[adminURL] = ri
			}
			placement[svc] = append(placement[svc], ri)
		}
	}
	return placement, installers, nil
}

func deployRemote(sc *statechart.Statechart, hosts hostFlags, wrapperAddr string) (*deployer.Deployment, map[string]*hostapi.RemoteInstaller, error) {
	placement, installers, err := resolveRemote(sc, hosts)
	if err != nil {
		return nil, nil, err
	}
	dep, err := deployer.Deploy(sc, placement)
	if err != nil {
		return nil, nil, err
	}
	peers := map[string][]string{}
	for state, addrs := range dep.Hosts {
		peers[state] = addrs
	}
	if wrapperAddr != "" {
		peers[message.WrapperID] = []string{wrapperAddr}
	}
	for _, ri := range installers {
		if err := ri.Client.PushReplicaDirectory(sc.Name, peers); err != nil {
			return nil, nil, err
		}
	}
	return dep, installers, nil
}

func cmdDeploy(args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	hosts := hostFlags{}
	fs.Var(hosts, "host", "Service=adminURL mapping (repeatable)")
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	sc, err := loadChart(file)
	if err != nil {
		return err
	}
	dep, _, err := deployRemote(sc, hosts, "")
	if err != nil {
		return err
	}
	states := make([]string, 0, len(dep.Hosts))
	for s := range dep.Hosts {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Printf("installed %-12s on %s\n", s, strings.Join(dep.Hosts[s], ", "))
	}
	fmt.Println("note: the wrapper address is pushed at run time ('selfserv run')")
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	hosts := hostFlags{}
	inputs := kvFlags{}
	fs.Var(hosts, "host", "Service=adminURL mapping (repeatable; repeat a service for replicas)")
	fs.Var(inputs, "in", "input variable k=v (repeatable)")
	timeout := fs.Duration("timeout", 30*time.Second, "execution timeout")
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	sc, err := loadChart(file)
	if err != nil {
		return err
	}

	// The wrapper runs in this process over its own TCP transport.
	tcp := transport.NewTCP()
	defer tcp.Close()
	dir := engine.NewDirectory()
	funcs := engine.Funcs(workload.TravelGuards())

	// Pre-generate to learn the plan; the remote deploy below re-generates
	// identically (Generate is deterministic).
	plan, err := routing.Generate(sc)
	if err != nil {
		return err
	}
	w, err := engine.NewWrapper(tcp, "127.0.0.1:0", dir, plan, funcs)
	if err != nil {
		return err
	}
	defer w.Close()

	dep, _, err := deployRemote(sc, hosts, w.Addr())
	if err != nil {
		return err
	}
	for state, addrs := range dep.Hosts {
		dir.SetReplicas(sc.Name, state, addrs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	out, err := w.Execute(ctx, inputs)
	if err != nil {
		return err
	}
	fmt.Printf("execution completed in %v\n", time.Since(start).Round(time.Millisecond))
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-18s %s\n", k, out[k])
	}
	return nil
}
