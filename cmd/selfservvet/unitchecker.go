package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"selfserv/internal/analysis/framework"
)

// vetConfig is the per-package JSON configuration the go command hands
// a -vettool (the x/tools unitchecker protocol). Field names and
// semantics follow cmd/go/internal/work's vet action.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheckerMode analyzes the single package described by cfgPath.
// Exit codes mirror x/tools unitchecker: 0 clean, 1 operational error,
// 2 findings.
func unitcheckerMode(cfgPath string, suite []*framework.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selfservvet: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "selfservvet: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command requires the facts file to exist even though this
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "selfservvet: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "selfservvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "selfservvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	pkg := &framework.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	findings, err := framework.Run([]*framework.Package{pkg}, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selfservvet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
