// Command selfservvet is the repo's multichecker: every machine-checked
// invariant of the engine's concurrency and determinism story in one
// binary (docs/static-analysis.md).
//
// Two modes:
//
//   - Standalone (make lint):
//
//     go run ./cmd/selfservvet ./...
//
//     loads the named package patterns (tests included by default) and
//     prints findings as file:line:col: message (analyzer), exiting 1
//     when any survive the //selfservvet:ignore filter.
//
//   - Vet tool:
//
//     go vet -vettool=$(go env GOPATH)/bin/selfservvet ./...
//
//     speaks the cmd/go unitchecker protocol: invoked with a *.cfg
//     JSON file per package, answers -V=full for the build cache, and
//     exits 2 when a package has findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"selfserv/internal/analysis/framework"
	"selfserv/internal/analysis/guardedby"
	"selfserv/internal/analysis/injectedclock"
	"selfserv/internal/analysis/lockorder"
	"selfserv/internal/analysis/reservedvar"
	"selfserv/internal/analysis/sentinelerr"
)

// version is the -V=full identity; bump when analyzer behaviour
// changes so `go vet` invalidates its cached verdicts.
const version = "v1.0.0"

// analyzers is the full suite, in reporting order.
var analyzers = []*framework.Analyzer{
	guardedby.Analyzer,
	injectedclock.Analyzer,
	lockorder.Analyzer,
	reservedvar.Analyzer,
	sentinelerr.Analyzer,
}

func main() {
	var (
		vFlag     = flag.String("V", "", "print version and exit (the go command passes -V=full)")
		flagsFlag = flag.Bool("flags", false, "print analyzer flags as JSON (unitchecker protocol)")
		testsFlag = flag.Bool("tests", true, "also analyze _test.go files (standalone mode)")
		checks    = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = usage
	flag.Parse()

	if *vFlag != "" {
		// The go command keys its action cache on this line.
		fmt.Printf("selfservvet version %s\n", version)
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	suite, err := selectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheckerMode(args[0], suite))
	}
	os.Exit(standaloneMode(args, suite, *testsFlag))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: selfservvet [-tests=false] [-checks=a,b] [packages]\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which selfservvet) [packages]\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
	}
	flag.PrintDefaults()
}

func selectAnalyzers(checks string) ([]*framework.Analyzer, error) {
	if checks == "" {
		return analyzers, nil
	}
	byName := map[string]*framework.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var suite []*framework.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run with -list for the suite)", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}

func standaloneMode(patterns []string, suite []*framework.Analyzer, tests bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.LoadPackages(".", patterns, tests)
	if err != nil {
		fatal(err)
	}
	findings, err := framework.Run(pkgs, suite)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "selfservvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "selfservvet: %v\n", err)
	os.Exit(2)
}
