package main

// Startup smoke test: the registry parses its flags, binds, answers
// /healthz and the UDDI endpoint, and shuts down cleanly on cancel.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sync"
	"testing"
	"time"
)

type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out logBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("run with an unknown flag succeeded, want error")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bogus"}, &out); err == nil {
		t.Fatal("run with an unbindable address succeeded, want error")
	}
}

var listenRe = regexp.MustCompile(`listening on http://([0-9.:]+)/uddi`)

func TestRunBindsServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out logBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &out)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("registry never logged its address; log:\n%s", out.String())
		}
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("health check: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/stats", addr))
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d, want 200", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("registry did not shut down within 5s of cancel")
	}
}
