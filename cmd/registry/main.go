// Registry runs the SELF-SERV service manager's UDDI registry as an HTTP
// server exposing the SOAP publish/inquiry API at /uddi.
//
//	go run ./cmd/registry -addr :8600
//
// Publish and query it with the discovery engine (see examples/discovery)
// or any SOAP client speaking the UDDI v2 action subset.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"selfserv/internal/uddi"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8600", "listen address")
	flag.Parse()

	registry := uddi.NewRegistry()
	mux := uddi.Serve(registry, nil)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		b, s, bd, t := registry.Counts()
		fmt.Fprintf(w, "businesses=%d services=%d bindings=%d tModels=%d\n", b, s, bd, t)
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	log.Printf("UDDI registry listening on http://%s/uddi", ln.Addr())
	log.Fatal(http.Serve(ln, mux))
}
