// Registry runs the SELF-SERV service manager's UDDI registry as an HTTP
// server exposing the SOAP publish/inquiry API at /uddi.
//
//	go run ./cmd/registry -addr :8600
//
// Publish and query it with the discovery engine (see examples/discovery)
// or any SOAP client speaking the UDDI v2 action subset.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"

	"selfserv/internal/uddi"
)

func main() {
	err := run(context.Background(), os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h printed usage; exit 0 like ExitOnError would
	}
	if err != nil {
		log.Fatal(err)
	}
}

// run is the whole server, factored so tests can start it with chosen
// flags, learn the bound address from its log output, and stop it
// through ctx.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("registry", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8600", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	registry := uddi.NewRegistry()
	mux := uddi.Serve(registry, nil)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		b, s, bd, t := registry.Counts()
		fmt.Fprintf(w, "businesses=%d services=%d bindings=%d tModels=%d\n", b, s, bd, t)
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	lg := log.New(out, "", log.LstdFlags)
	lg.Printf("UDDI registry listening on http://%s/uddi", ln.Addr())

	srv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) && ctx.Err() == nil {
		return err
	}
	return nil
}
