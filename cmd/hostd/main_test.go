package main

// Startup smoke tests: flag parsing rejects bad specs, and the daemon
// binds its coordination + admin endpoints, answers the admin health
// check, and shuts down cleanly when its context is cancelled.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// logBuffer is a goroutine-safe io.Writer capturing the daemon's log.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	var out logBuffer
	cases := [][]string{
		{},                                   // no -services
		{"-services", "NoSuchService"},       // unknown service
		{"-services", "echo:only-two-parts"}, // malformed echo spec
		{"-services", "inc:X", "-queue-policy", "banana"}, // bad policy
		{"-services", "inc:X", "-fsync", "sometimes"},     // bad fsync mode
		{"-no-such-flag"}, // unknown flag
	}
	for _, args := range cases {
		if err := run(ctx, args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

var adminRe = regexp.MustCompile(`admin on http://([0-9.:]+)`)

func TestRunBindsServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out logBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-coord", "127.0.0.1:0", "-admin", "127.0.0.1:0",
			"-services", "inc:Inc,echo:Echo:ping",
			"-send-queue", "64", "-queue-policy", "shed",
			"-conn-idle-timeout", "1s", "-max-conns", "8",
			"-stats", "10ms",
		}, &out)
	}()

	// The daemon logs its bound admin address; wait for it.
	var admin string
	deadline := time.Now().Add(5 * time.Second)
	for admin == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged its admin address; log:\n%s", out.String())
		}
		if m := adminRe.FindStringSubmatch(out.String()); m != nil {
			admin = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", admin))
	if err != nil {
		t.Fatalf("admin health check: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down within 5s of cancel")
	}
	if !strings.Contains(out.String(), "services") {
		t.Fatalf("startup log missing the services line:\n%s", out.String())
	}
}

func TestParseTenantLimits(t *testing.T) {
	if l, err := parseTenantLimits(""); err != nil || l != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", l, err)
	}
	l, err := parseTenantLimits("default=0.001:1,acme=100")
	if err != nil {
		t.Fatalf("parseTenantLimits: %v", err)
	}
	// The default bucket holds exactly one token and (at 0.001/s) will
	// not refill within the test: the second anonymous request sheds,
	// while the generously-limited tenant keeps being admitted.
	if err := l.Allow(""); err != nil {
		t.Fatalf("first anonymous request: %v", err)
	}
	if err := l.Allow(""); err == nil {
		t.Fatal("second anonymous request admitted, want shed")
	}
	for i := 0; i < 10; i++ {
		if err := l.Allow("acme"); err != nil {
			t.Fatalf("acme request %d: %v", i, err)
		}
	}
	for _, bad := range []string{"nope", "=5", "t=x", "t=1:x"} {
		if _, err := parseTenantLimits(bad); err == nil {
			t.Errorf("parseTenantLimits(%q) succeeded, want error", bad)
		}
	}
}

func TestRunWithAvailabilityFlags(t *testing.T) {
	// The availability controls all enabled at once: community breakers +
	// transport breakers, health checks, tenant limits, and the stats
	// line carrying the churn counters.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out logBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-coord", "127.0.0.1:0", "-admin", "127.0.0.1:0",
			"-services", "AccommodationBooking,CarRental",
			"-breaker-window", "16", "-breaker-threshold", "0.5",
			"-breaker-open-for", "2s",
			"-health-interval", "20ms", "-health-jitter", "5ms",
			"-tenant-limits", "default=100,visa=1000:2000",
			"-stats", "10ms",
		}, &out)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged the churn counters; log:\n%s", out.String())
		}
		if strings.Contains(out.String(), "breaker-opens=") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down within 5s of cancel")
	}
	for _, want := range []string{"failovers=", "shed="} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stats line missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWithDurabilityFlags(t *testing.T) {
	// The durable-instance controls end to end: journal directory, fsync
	// mode, snapshot cadence, drain timeout, the admin /recover resource
	// reporting a configured journal, and the stats line carrying the
	// swap + durability counters.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out logBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-coord", "127.0.0.1:0", "-admin", "127.0.0.1:0",
			"-services", "inc:Inc",
			"-journal-dir", t.TempDir(), "-fsync", "off",
			"-snapshot-every", "4", "-drain-timeout", "5s",
			"-stats", "10ms",
		}, &out)
	}()

	var admin string
	deadline := time.Now().Add(5 * time.Second)
	for admin == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged its admin address; log:\n%s", out.String())
		}
		if m := adminRe.FindStringSubmatch(out.String()); m != nil {
			admin = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/recover", admin))
	if err != nil {
		t.Fatalf("GET /recover: %v", err)
	}
	var st struct {
		Configured bool `json:"configured"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /recover: %v", err)
	}
	resp.Body.Close()
	if !st.Configured {
		t.Fatal("/recover reports no journal despite -journal-dir")
	}

	deadline = time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "passivated=") {
		if time.Now().After(deadline) {
			t.Fatalf("stats line never carried durability counters; log:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down within 5s of cancel")
	}
	for _, want := range []string{"rerouted=", "in-flight=", "abandoned=", "evicted=", "journal-appends=", "durability"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("log missing %q:\n%s", want, out.String())
		}
	}
}
