// Hostd is the SELF-SERV host daemon: it runs the Coordinator and Wrapper
// machinery on a provider's node. It serves a set of local component
// services, listens for peer-to-peer coordination messages on a TCP
// address, and accepts routing-table uploads from the deployer on an
// admin HTTP address (the paper's "download and install the Coordinator
// class" step, as a daemon).
//
//	go run ./cmd/hostd -coord 127.0.0.1:9001 -admin 127.0.0.1:7001 \
//	    -services DomesticFlightBooking,AttractionsSearch
//
// Available built-in services: the five travel-scenario providers
// (AccommodationBooking is a three-member community), plus
// "echo:<Name>:<op>" for generic wiring tests and "inc:<Name>" for a
// service that increments its numeric "x" parameter.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"selfserv/internal/engine"
	"selfserv/internal/hostapi"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

func main() {
	coordAddr := flag.String("coord", "127.0.0.1:0", "coordination (TCP) listen address")
	adminAddr := flag.String("admin", "127.0.0.1:0", "admin HTTP listen address")
	services := flag.String("services", "", "comma-separated services to host (see doc)")
	latency := flag.Duration("latency", 5*time.Millisecond, "simulated service latency")
	statsEvery := flag.Duration("stats", 0, "log transport traffic (messages vs wire frames) at this interval; 0 disables")
	verbose := flag.Bool("v", false, "log coordinator activity")
	flag.Parse()

	reg := service.NewRegistry()
	if err := registerServices(reg, *services, *latency); err != nil {
		log.Fatal(err)
	}

	tcp := transport.NewTCP()
	defer tcp.Close()
	dir := engine.NewDirectory()
	opts := engine.HostOptions{Funcs: engine.Funcs(workload.TravelGuards())}
	if *verbose {
		opts.Logf = log.Printf
	}
	host, err := engine.NewHost(tcp, *coordAddr, reg, dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	admin := hostapi.NewServer(host, dir, reg.Names)
	ln, err := net.Listen("tcp", *adminAddr)
	if err != nil {
		log.Fatal(err)
	}
	if *statsEvery > 0 {
		go logStats(tcp, host.Addr(), *statsEvery)
	}
	log.Printf("hostd: coordination on %s, admin on http://%s, services %v",
		host.Addr(), ln.Addr(), reg.Names())
	log.Fatal(http.Serve(ln, admin))
}

// logStats periodically reports this host's transport counters. The
// msgs-out/frames-out gap is the Network v2 coalescing win: a coordinator
// round that notifies several peers on one node pays a single frame.
func logStats(tcp *transport.TCP, coordAddr string, every time.Duration) {
	for range time.Tick(every) {
		ns := tcp.Stats().Nodes[coordAddr]
		log.Printf("hostd: traffic in=%d out=%d frames-out=%d bytes-in=%d bytes-out=%d",
			ns.MsgsIn, ns.MsgsOut, ns.FramesOut, ns.BytesIn, ns.BytesOut)
	}
}

// registerServices parses the -services flag.
func registerServices(reg *service.Registry, spec string, latency time.Duration) error {
	opts := service.SimulatedOptions{BaseLatency: latency}
	if spec == "" {
		return fmt.Errorf("hostd: -services is required (nothing to host)")
	}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "DomesticFlightBooking":
			reg.Register(service.NewDomesticFlightBooking(opts))
		case name == "InternationalTravel":
			reg.Register(service.NewInternationalTravel(opts))
		case name == "AttractionsSearch":
			reg.Register(service.NewAttractionsSearch(opts))
		case name == "CarRental":
			reg.Register(service.NewCarRental(opts))
		case name == "AccommodationBooking":
			if _, err := workload.RegisterTravelCommunity(reg, opts); err != nil {
				return err
			}
		case strings.HasPrefix(name, "echo:"):
			parts := strings.Split(name, ":")
			if len(parts) != 3 {
				return fmt.Errorf("hostd: echo service spec %q, want echo:<Name>:<op>", name)
			}
			reg.Register(service.NewSimulated(parts[1], opts).Echo(parts[2]))
		case strings.HasPrefix(name, "inc:"):
			svcName := strings.TrimPrefix(name, "inc:")
			s := service.NewSimulated(svcName, opts)
			s.Handle("run", func(_ context.Context, p map[string]string) (map[string]string, error) {
				x, err := strconv.ParseFloat(p["x"], 64)
				if err != nil {
					return nil, fmt.Errorf("bad x %q: %w", p["x"], err)
				}
				return map[string]string{"x": strconv.FormatFloat(x+1, 'g', -1, 64)}, nil
			})
			reg.Register(s)
		default:
			return fmt.Errorf("hostd: unknown service %q", name)
		}
	}
	return nil
}
