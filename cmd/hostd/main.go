// Hostd is the SELF-SERV host daemon: it runs the Coordinator and Wrapper
// machinery on a provider's node. It serves a set of local component
// services, listens for peer-to-peer coordination messages on a TCP
// address, and accepts routing-table uploads from the deployer on an
// admin HTTP address (the paper's "download and install the Coordinator
// class" step, as a daemon).
//
//	go run ./cmd/hostd -coord 127.0.0.1:9001 -admin 127.0.0.1:7001 \
//	    -services DomesticFlightBooking,AttractionsSearch
//
// Available built-in services: the five travel-scenario providers
// (AccommodationBooking is a three-member community), plus
// "echo:<Name>:<op>" for generic wiring tests and "inc:<Name>" for a
// service that increments its numeric "x" parameter.
//
// Transport flow control, connection lifecycle, cross-round batching,
// and the bounded receive lanes are tunable: see the -send-queue,
// -queue-policy, -send-deadline, -conn-idle-timeout, -max-conns,
// -reconnect-backoff, -flush-delay, -max-batch-bytes, -recv-lanes and
// -recv-queue flags (and docs/transport.md for the contract behind
// them).
//
// The availability-under-churn controls (docs/availability.md): circuit
// breakers on both the transport send path and the hosted community's
// members (-breaker-window, -breaker-threshold, -breaker-min-samples,
// -breaker-open-for), active health checks probing dark community
// members back to life (-health-interval, -health-jitter), and
// per-tenant admission control (-tenant-limits). Shed requests,
// failovers, and breaker opens appear on the -stats line.
//
// Durable instances (docs/durability.md): -journal-dir turns on the
// per-shard write-ahead journal (cap-hit eviction becomes passivation,
// crash recovery becomes possible), -fsync picks the durability/latency
// trade (always, batch, off), -snapshot-every tunes how often an
// instance's full bag is snapshotted between rounds, and the admin
// API's POST /recover replays the journal once the control plane has
// reinstalled the daemon's tables. -drain-timeout bounds how long a
// replaced deployment may finish in-flight instances after a redeploy.
// The daemon runs on a core.Platform, so the -stats line also carries
// the swap counters (rerouted/dropped-stale/abandoned/in-flight) and
// the durability counters (evicted/passivated/rehydrated, journal
// appends).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"selfserv/internal/circuit"
	"selfserv/internal/community"
	"selfserv/internal/core"
	"selfserv/internal/engine"
	"selfserv/internal/hostapi"
	"selfserv/internal/journal"
	"selfserv/internal/limits"
	"selfserv/internal/placement"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

func main() {
	err := run(context.Background(), os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h printed usage; exit 0 like ExitOnError would
	}
	if err != nil {
		log.Fatal(err)
	}
}

// run is the whole daemon, factored so tests can start it with chosen
// flags, watch its log output on out, and stop it through ctx.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hostd", flag.ContinueOnError)
	fs.SetOutput(out)
	coordAddr := fs.String("coord", "127.0.0.1:0", "coordination (TCP) listen address")
	adminAddr := fs.String("admin", "127.0.0.1:0", "admin HTTP listen address")
	services := fs.String("services", "", "comma-separated services to host (see doc)")
	latency := fs.Duration("latency", 5*time.Millisecond, "simulated service latency")
	svcConcurrency := fs.Int("svc-concurrency", 0, "cap concurrent invocations per hosted simulated service — models real provider capacity; extra callers queue (0 = unlimited)")
	shardSize := fs.Int("placement-shard-size", 0, "shuffle-shard width for tenant-aware replica routing: each tenant's instances spread over at most this many replicas of a state (0 = all replicas)")
	cells := fs.String("placement-cells", "", "dedicated placement cells, \"<tenant>=<size>,...\": claim <size> replicas exclusively for <tenant>; must be identical on every replica of a deployment")
	statsEvery := fs.Duration("stats", 0, "log transport traffic (messages vs wire frames, queue depth, reconnects) at this interval; 0 disables")
	verbose := fs.Bool("v", false, "log coordinator activity")

	sendQueue := fs.Int("send-queue", 0, "per-connection write queue capacity, in frames (0 = 256); a full queue applies -queue-policy")
	queuePolicy := fs.String("queue-policy", "block", "full-queue policy: \"block\" waits up to -send-deadline for space, \"shed\" fails the send immediately")
	sendDeadline := fs.Duration("send-deadline", 0, "how long a blocked send may wait for queue space (0 = 5s)")
	idleTimeout := fs.Duration("conn-idle-timeout", 0, "evict cached peer connections idle this long (0 = never)")
	maxConns := fs.Int("max-conns", 0, "cap on cached outbound peer connections, evicting the least-recently-used idle one (0 = unlimited)")
	backoffBase := fs.Duration("reconnect-backoff", 0, "first reconnect delay after a failed peer connection; doubles per attempt, jittered (0 = 25ms)")
	backoffMax := fs.Duration("reconnect-backoff-max", 0, "cap on the reconnect delay (0 = 2s)")
	flushDelay := fs.Duration("flush-delay", 0, "cross-round batching: wait this long per wire write to merge everything queued for a destination into one frame; trades latency for throughput (0 = off, write per frame)")
	maxBatchBytes := fs.Int("max-batch-bytes", 0, "payload cap for a merged frame under -flush-delay (0 = 256KiB)")
	recvLanes := fs.Int("recv-lanes", 0, "bounded receive delivery lanes per listener; inbound frames hash by logical sender (the frame's From) onto a lane, each delivering in FIFO order (0 = 8)")
	recvQueue := fs.Int("recv-queue", 0, "per-lane receive queue capacity, in frames; a full lane pushes back on the sending connection (0 = 256)")

	breakerWindow := fs.Int("breaker-window", 0, "circuit-breaker rolling window size, in outcomes; 0 disables breakers entirely (transport send path and community delegation)")
	breakerThreshold := fs.Float64("breaker-threshold", 0, "failure fraction of the window that opens a breaker (0 = 0.5)")
	breakerMinSamples := fs.Int("breaker-min-samples", 0, "outcomes required in the window before a breaker may open (0 = window size)")
	breakerOpenFor := fs.Duration("breaker-open-for", 0, "cool-down before an open breaker admits half-open probes (0 = 5s)")
	healthInterval := fs.Duration("health-interval", 0, "actively probe the hosted community's members at this interval; 0 disables health checks")
	healthJitter := fs.Duration("health-jitter", 0, "random extra delay added to each health-check round (0 = interval/10)")
	tenantLimits := fs.String("tenant-limits", "", "per-tenant admission control, \"default=<rate>[:<burst>],<tenant>=<rate>[:<burst>],...\" in requests/second; empty disables")

	drainTimeout := fs.Duration("drain-timeout", 0, "bound on how long a replaced deployment may keep finishing in-flight instances after a redeploy before stragglers are failed loudly (0 = 30s)")
	journalDir := fs.String("journal-dir", "", "durability journal directory: every coordinator commit point is journaled, cap-hit eviction becomes passivation, and POST /recover can replay after a crash; empty disables durability")
	fsyncMode := fs.String("fsync", "batch", "journal fsync mode: \"always\" syncs every append, \"batch\" syncs once per flushed batch, \"off\" leaves syncing to the OS (fast CI)")
	snapshotEvery := fs.Int("snapshot-every", 0, "journal a full instance snapshot every N firing rounds, bounding replay length (0 = 16)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := transport.ParseQueuePolicy(*queuePolicy)
	if err != nil {
		return err
	}
	var breaker *circuit.Options
	if *breakerWindow > 0 {
		breaker = &circuit.Options{
			Window:     *breakerWindow,
			Threshold:  *breakerThreshold,
			MinSamples: *breakerMinSamples,
			OpenFor:    *breakerOpenFor,
		}
	}
	limiter, err := parseTenantLimits(*tenantLimits)
	if err != nil {
		return err
	}
	placementPolicy, err := parsePlacementCells(*cells)
	if err != nil {
		return err
	}
	placementPolicy.ShardSize = *shardSize

	lg := log.New(out, "", log.LstdFlags)

	tcp := transport.NewTCP(transport.FlowOptions{
		QueueLen:      *sendQueue,
		Policy:        policy,
		SendDeadline:  *sendDeadline,
		IdleTimeout:   *idleTimeout,
		MaxConns:      *maxConns,
		BackoffBase:   *backoffBase,
		BackoffMax:    *backoffMax,
		FlushDelay:    *flushDelay,
		MaxBatchBytes: *maxBatchBytes,
		RecvLanes:     *recvLanes,
		RecvQueueLen:  *recvQueue,
		Breaker:       breaker,
	})
	defer tcp.Close()

	// Community availability events land in the transport's stats book,
	// keyed by the failing member's name, so the -stats line (and any
	// Stats() reader) sees churn without a second counter surface.
	commOpts := community.Options{
		Breaker:    breaker,
		OnFailover: func(member string) { tcp.RecordFailover(member) },
	}
	if *healthInterval > 0 {
		commOpts.Health = &community.HealthOptions{
			Interval: *healthInterval,
			Jitter:   *healthJitter,
		}
	}
	fsync, err := journal.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return fmt.Errorf("hostd: %w", err)
	}

	// The daemon's machinery — host, directory, registry, drain-aware
	// swaps, and the durability journal — is a core.Platform over the
	// shared TCP transport. The platform does not own the network (hostd
	// closes it) and hostd never calls Deploy: tables arrive through the
	// admin API like before.
	hostOpts := engine.HostOptions{Limits: limiter}
	if *verbose {
		hostOpts.Logf = lg.Printf
	}
	p := core.New(core.Options{
		Network:      tcp,
		Funcs:        workload.TravelGuards(),
		HostOptions:  hostOpts,
		Placement:    placementPolicy,
		DrainTimeout: *drainTimeout,
		Durability: journal.Options{
			Dir:           *journalDir,
			Fsync:         fsync,
			SnapshotEvery: *snapshotEvery,
		},
	})
	defer p.Close()
	if err := p.DurabilityError(); err != nil {
		lg.Printf("hostd: WARNING: journal %s failed to open (%v); running journal-less — instances are NOT durable", *journalDir, err)
	}

	comm, err := registerServices(p.Registry(), *services, service.SimulatedOptions{
		BaseLatency:   *latency,
		MaxConcurrent: *svcConcurrency,
	}, commOpts)
	if err != nil {
		return err
	}
	host, err := p.AddHost(*coordAddr)
	if err != nil {
		return err
	}
	if comm != nil && *healthInterval > 0 {
		comm.StartHealthChecks(ctx)
		defer comm.StopHealthChecks()
	}

	admin := hostapi.NewServer(host, p.Directory(), p.Registry().Names)
	if p.Journal() != nil {
		admin.SetRecoverFunc(p.Recover)
	}
	ln, err := net.Listen("tcp", *adminAddr)
	if err != nil {
		return err
	}
	if *statsEvery > 0 {
		go logStats(ctx, lg, p, tcp, host.Addr(), *statsEvery)
	}
	durable := "off"
	if p.Journal() != nil {
		durable = fmt.Sprintf("%s (fsync %s)", *journalDir, *fsyncMode)
	}
	lg.Printf("hostd: coordination on %s, admin on http://%s, services %v, durability %s",
		host.Addr(), ln.Addr(), p.Registry().Names(), durable)

	srv := &http.Server{Handler: admin}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) && ctx.Err() == nil {
		return err
	}
	return nil
}

// logStats periodically reports this host's transport counters. The
// msgs-out/frames-out gap is the Network v2 coalescing win; queue depth,
// blocked sends, and reconnects are the flow-control observables (the
// totals aggregate the per-destination counters). The platform line
// carries the redeploy-swap counters (rerouted/dropped-stale stale
// frames, in-flight executions, abandoned stragglers) and the
// durable-instance counters (evictions, passivations, rehydrations,
// journal appends/syncs).
func logStats(ctx context.Context, lg *log.Logger, p *core.Platform, tcp *transport.TCP, coordAddr string, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			st := tcp.Stats()
			ns := st.Nodes[coordAddr]
			total := st.Total()
			swap := p.SwapStats()
			dur := p.DurabilityStats()
			lg.Printf("hostd: traffic in=%d out=%d frames-out=%d bytes-in=%d bytes-out=%d"+
				" queue-depth=%d send-blocked=%d reconnects=%d frames-merged=%d merged-msgs-per-frame=%.1f"+
				" recv-lanes=%d recv-queue-depth=%d conns=%d"+
				" failovers=%d shed=%d breaker-opens=%d"+
				" rerouted=%d dropped-stale=%d in-flight=%d abandoned=%d"+
				" evicted=%d passivated=%d rehydrated=%d journal-appends=%d journal-syncs=%d",
				ns.MsgsIn, ns.MsgsOut, ns.FramesOut, ns.BytesIn, ns.BytesOut,
				total.QueueDepth, total.SendBlocked, total.Reconnects,
				total.FramesMerged, total.MergedMsgsPerFrame(),
				ns.RecvLanes, ns.RecvQueueDepth, tcp.ConnCount(),
				total.Failovers, total.ShedRequests, total.BreakerOpens,
				swap.Rerouted, swap.DroppedStale, p.InFlight(), p.Abandoned(),
				dur.Evicted, dur.Passivated, dur.Rehydrated,
				dur.Journal.Appends, dur.Journal.Syncs)
		}
	}
}

// registerServices parses the -services flag. When AccommodationBooking
// is hosted, its community is built with commOpts (breakers, health
// checks, availability observers) and returned for lifecycle wiring.
func registerServices(reg *service.Registry, spec string, opts service.SimulatedOptions, commOpts community.Options) (*community.Community, error) {
	if spec == "" {
		return nil, fmt.Errorf("hostd: -services is required (nothing to host)")
	}
	var comm *community.Community
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "DomesticFlightBooking":
			reg.Register(service.NewDomesticFlightBooking(opts))
		case name == "InternationalTravel":
			reg.Register(service.NewInternationalTravel(opts))
		case name == "AttractionsSearch":
			reg.Register(service.NewAttractionsSearch(opts))
		case name == "CarRental":
			reg.Register(service.NewCarRental(opts))
		case name == "AccommodationBooking":
			var err error
			if comm, err = workload.RegisterTravelCommunityWith(reg, opts, commOpts); err != nil {
				return nil, err
			}
		case strings.HasPrefix(name, "echo:"):
			parts := strings.Split(name, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("hostd: echo service spec %q, want echo:<Name>:<op>", name)
			}
			reg.Register(service.NewSimulated(parts[1], opts).Echo(parts[2]))
		case strings.HasPrefix(name, "inc:"):
			svcName := strings.TrimPrefix(name, "inc:")
			s := service.NewSimulated(svcName, opts)
			s.Handle("run", func(_ context.Context, p map[string]string) (map[string]string, error) {
				x, err := strconv.ParseFloat(p["x"], 64)
				if err != nil {
					return nil, fmt.Errorf("bad x %q: %w", p["x"], err)
				}
				return map[string]string{"x": strconv.FormatFloat(x+1, 'g', -1, 64)}, nil
			})
			reg.Register(s)
		default:
			return nil, fmt.Errorf("hostd: unknown service %q", name)
		}
	}
	return comm, nil
}

// parsePlacementCells turns the -placement-cells spec into the
// dedicated-cell part of a placement policy: comma-separated
// "<tenant>=<size>" entries, each claiming <size> replicas exclusively
// for <tenant>. Routing is a pure local computation, so the SAME policy
// must be configured on every replica of a deployment — mismatched
// policies would route one instance's notifications to different
// coordinators.
func parsePlacementCells(spec string) (placement.Policy, error) {
	var pol placement.Policy
	if spec == "" {
		return pol, nil
	}
	pol.Dedicated = map[string]int{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		tenant, sizeSpec, ok := strings.Cut(entry, "=")
		if !ok || tenant == "" {
			return pol, fmt.Errorf("hostd: placement cell %q, want <tenant>=<size>", entry)
		}
		size, err := strconv.Atoi(sizeSpec)
		if err != nil || size <= 0 {
			return pol, fmt.Errorf("hostd: placement cell %q: size must be a positive integer", entry)
		}
		pol.Dedicated[tenant] = size
	}
	return pol, nil
}

// parseTenantLimits turns the -tenant-limits spec into a Limiter:
// comma-separated "<tenant>=<rate>" or "<tenant>=<rate>:<burst>"
// entries, rates in requests/second; the reserved tenant name "default"
// sets the bucket shape for everyone without an override. An empty spec
// returns nil (no admission control).
func parseTenantLimits(spec string) (*limits.Limiter, error) {
	if spec == "" {
		return nil, nil
	}
	lo := limits.Options{PerTenant: map[string]limits.Limit{}}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		tenant, shape, ok := strings.Cut(entry, "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("hostd: tenant limit %q, want <tenant>=<rate>[:<burst>]", entry)
		}
		rateSpec, burstSpec, hasBurst := strings.Cut(shape, ":")
		var lim limits.Limit
		var err error
		if lim.Rate, err = strconv.ParseFloat(rateSpec, 64); err != nil {
			return nil, fmt.Errorf("hostd: tenant %q rate %q: %w", tenant, rateSpec, err)
		}
		if hasBurst {
			if lim.Burst, err = strconv.ParseFloat(burstSpec, 64); err != nil {
				return nil, fmt.Errorf("hostd: tenant %q burst %q: %w", tenant, burstSpec, err)
			}
		}
		if tenant == "default" {
			lo.Default = lim
		} else {
			lo.PerTenant[tenant] = lim
		}
	}
	return limits.New(lo), nil
}
