// Hostd is the SELF-SERV host daemon: it runs the Coordinator and Wrapper
// machinery on a provider's node. It serves a set of local component
// services, listens for peer-to-peer coordination messages on a TCP
// address, and accepts routing-table uploads from the deployer on an
// admin HTTP address (the paper's "download and install the Coordinator
// class" step, as a daemon).
//
//	go run ./cmd/hostd -coord 127.0.0.1:9001 -admin 127.0.0.1:7001 \
//	    -services DomesticFlightBooking,AttractionsSearch
//
// Available built-in services: the five travel-scenario providers
// (AccommodationBooking is a three-member community), plus
// "echo:<Name>:<op>" for generic wiring tests and "inc:<Name>" for a
// service that increments its numeric "x" parameter.
//
// Transport flow control, connection lifecycle, cross-round batching,
// and the bounded receive lanes are tunable: see the -send-queue,
// -queue-policy, -send-deadline, -conn-idle-timeout, -max-conns,
// -reconnect-backoff, -flush-delay, -max-batch-bytes, -recv-lanes and
// -recv-queue flags (and docs/transport.md for the contract behind
// them).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"selfserv/internal/engine"
	"selfserv/internal/hostapi"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

func main() {
	err := run(context.Background(), os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h printed usage; exit 0 like ExitOnError would
	}
	if err != nil {
		log.Fatal(err)
	}
}

// run is the whole daemon, factored so tests can start it with chosen
// flags, watch its log output on out, and stop it through ctx.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hostd", flag.ContinueOnError)
	fs.SetOutput(out)
	coordAddr := fs.String("coord", "127.0.0.1:0", "coordination (TCP) listen address")
	adminAddr := fs.String("admin", "127.0.0.1:0", "admin HTTP listen address")
	services := fs.String("services", "", "comma-separated services to host (see doc)")
	latency := fs.Duration("latency", 5*time.Millisecond, "simulated service latency")
	statsEvery := fs.Duration("stats", 0, "log transport traffic (messages vs wire frames, queue depth, reconnects) at this interval; 0 disables")
	verbose := fs.Bool("v", false, "log coordinator activity")

	sendQueue := fs.Int("send-queue", 0, "per-connection write queue capacity, in frames (0 = 256); a full queue applies -queue-policy")
	queuePolicy := fs.String("queue-policy", "block", "full-queue policy: \"block\" waits up to -send-deadline for space, \"shed\" fails the send immediately")
	sendDeadline := fs.Duration("send-deadline", 0, "how long a blocked send may wait for queue space (0 = 5s)")
	idleTimeout := fs.Duration("conn-idle-timeout", 0, "evict cached peer connections idle this long (0 = never)")
	maxConns := fs.Int("max-conns", 0, "cap on cached outbound peer connections, evicting the least-recently-used idle one (0 = unlimited)")
	backoffBase := fs.Duration("reconnect-backoff", 0, "first reconnect delay after a failed peer connection; doubles per attempt, jittered (0 = 25ms)")
	backoffMax := fs.Duration("reconnect-backoff-max", 0, "cap on the reconnect delay (0 = 2s)")
	flushDelay := fs.Duration("flush-delay", 0, "cross-round batching: wait this long per wire write to merge everything queued for a destination into one frame; trades latency for throughput (0 = off, write per frame)")
	maxBatchBytes := fs.Int("max-batch-bytes", 0, "payload cap for a merged frame under -flush-delay (0 = 256KiB)")
	recvLanes := fs.Int("recv-lanes", 0, "bounded receive delivery lanes per listener; inbound frames hash by logical sender (the frame's From) onto a lane, each delivering in FIFO order (0 = 8)")
	recvQueue := fs.Int("recv-queue", 0, "per-lane receive queue capacity, in frames; a full lane pushes back on the sending connection (0 = 256)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := transport.ParseQueuePolicy(*queuePolicy)
	if err != nil {
		return err
	}

	lg := log.New(out, "", log.LstdFlags)
	reg := service.NewRegistry()
	if err := registerServices(reg, *services, *latency); err != nil {
		return err
	}

	tcp := transport.NewTCP(transport.FlowOptions{
		QueueLen:      *sendQueue,
		Policy:        policy,
		SendDeadline:  *sendDeadline,
		IdleTimeout:   *idleTimeout,
		MaxConns:      *maxConns,
		BackoffBase:   *backoffBase,
		BackoffMax:    *backoffMax,
		FlushDelay:    *flushDelay,
		MaxBatchBytes: *maxBatchBytes,
		RecvLanes:     *recvLanes,
		RecvQueueLen:  *recvQueue,
	})
	defer tcp.Close()
	dir := engine.NewDirectory()
	opts := engine.HostOptions{Funcs: engine.Funcs(workload.TravelGuards())}
	if *verbose {
		opts.Logf = lg.Printf
	}
	host, err := engine.NewHost(tcp, *coordAddr, reg, dir, opts)
	if err != nil {
		return err
	}
	defer host.Close()

	admin := hostapi.NewServer(host, dir, reg.Names)
	ln, err := net.Listen("tcp", *adminAddr)
	if err != nil {
		return err
	}
	if *statsEvery > 0 {
		go logStats(ctx, lg, tcp, host.Addr(), *statsEvery)
	}
	lg.Printf("hostd: coordination on %s, admin on http://%s, services %v",
		host.Addr(), ln.Addr(), reg.Names())

	srv := &http.Server{Handler: admin}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) && ctx.Err() == nil {
		return err
	}
	return nil
}

// logStats periodically reports this host's transport counters. The
// msgs-out/frames-out gap is the Network v2 coalescing win; queue depth,
// blocked sends, and reconnects are the flow-control observables (the
// totals aggregate the per-destination counters).
func logStats(ctx context.Context, lg *log.Logger, tcp *transport.TCP, coordAddr string, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			st := tcp.Stats()
			ns := st.Nodes[coordAddr]
			total := st.Total()
			lg.Printf("hostd: traffic in=%d out=%d frames-out=%d bytes-in=%d bytes-out=%d"+
				" queue-depth=%d send-blocked=%d reconnects=%d frames-merged=%d merged-msgs-per-frame=%.1f"+
				" recv-lanes=%d recv-queue-depth=%d conns=%d",
				ns.MsgsIn, ns.MsgsOut, ns.FramesOut, ns.BytesIn, ns.BytesOut,
				total.QueueDepth, total.SendBlocked, total.Reconnects,
				total.FramesMerged, total.MergedMsgsPerFrame(),
				ns.RecvLanes, ns.RecvQueueDepth, tcp.ConnCount())
		}
	}
}

// registerServices parses the -services flag.
func registerServices(reg *service.Registry, spec string, latency time.Duration) error {
	opts := service.SimulatedOptions{BaseLatency: latency}
	if spec == "" {
		return fmt.Errorf("hostd: -services is required (nothing to host)")
	}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "DomesticFlightBooking":
			reg.Register(service.NewDomesticFlightBooking(opts))
		case name == "InternationalTravel":
			reg.Register(service.NewInternationalTravel(opts))
		case name == "AttractionsSearch":
			reg.Register(service.NewAttractionsSearch(opts))
		case name == "CarRental":
			reg.Register(service.NewCarRental(opts))
		case name == "AccommodationBooking":
			if _, err := workload.RegisterTravelCommunity(reg, opts); err != nil {
				return err
			}
		case strings.HasPrefix(name, "echo:"):
			parts := strings.Split(name, ":")
			if len(parts) != 3 {
				return fmt.Errorf("hostd: echo service spec %q, want echo:<Name>:<op>", name)
			}
			reg.Register(service.NewSimulated(parts[1], opts).Echo(parts[2]))
		case strings.HasPrefix(name, "inc:"):
			svcName := strings.TrimPrefix(name, "inc:")
			s := service.NewSimulated(svcName, opts)
			s.Handle("run", func(_ context.Context, p map[string]string) (map[string]string, error) {
				x, err := strconv.ParseFloat(p["x"], 64)
				if err != nil {
					return nil, fmt.Errorf("bad x %q: %w", p["x"], err)
				}
				return map[string]string{"x": strconv.FormatFloat(x+1, 'g', -1, 64)}, nil
			})
			reg.Register(s)
		default:
			return fmt.Errorf("hostd: unknown service %q", name)
		}
	}
	return nil
}
