// Bench regenerates the experiment tables (E1–E10) as Markdown, using
// fixed iteration counts rather than testing.B's auto-scaling, so rows
// are directly comparable across runs.
//
//	go run ./cmd/bench            # all experiments
//	go run ./cmd/bench -exp e3,e8 # a subset
//	go run ./cmd/bench -n 200     # iterations per cell
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selfserv/internal/circuit"
	"selfserv/internal/community"
	"selfserv/internal/core"
	"selfserv/internal/deployer"
	"selfserv/internal/discovery"
	"selfserv/internal/engine"
	"selfserv/internal/hostapi"
	"selfserv/internal/limits"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
	"selfserv/internal/uddi"
	"selfserv/internal/workload"
)

var iterations = flag.Int("n", 100, "iterations per table cell")

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments (e1..e10) or 'all'")
	flag.Parse()

	run := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"} {
			run[e] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			run[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}
	if run["e1"] {
		e1()
	}
	if run["e2"] {
		e2()
	}
	if run["e3"] {
		e3()
	}
	if run["e4"] {
		e4()
	}
	if run["e5"] {
		e5()
	}
	if run["e6"] {
		e6()
	}
	if run["e7"] {
		e7()
	}
	if run["e8"] {
		e8()
	}
	if run["e9"] {
		e9()
	}
	if run["e10"] {
		e10()
	}
}

// deploy builds a platform with one host per service.
func deploy(sc *statechart.Statechart, register func(*core.Platform)) (*core.Platform, *core.Composite) {
	p := core.New(core.Options{Funcs: workload.TravelGuards()})
	register(p)
	for i, svc := range sc.Services() {
		h, err := p.AddHost(fmt.Sprintf("host-%d-%s", i, svc))
		if err != nil {
			log.Fatal(err)
		}
		prov, err := p.Registry().Lookup(svc)
		if err != nil {
			log.Fatal(err)
		}
		p.RegisterService(h, prov)
	}
	comp, err := p.Deploy(sc)
	if err != nil {
		log.Fatal(err)
	}
	return p, comp
}

// timeRuns executes f n times and returns the mean wall-clock duration.
func timeRuns(n int, f func() error) (time.Duration, int) {
	failures := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := f(); err != nil {
			failures++
		}
	}
	return time.Since(start) / time.Duration(n), failures
}

func header(title string, cols ...string) {
	fmt.Printf("\n## %s\n\n", title)
	fmt.Println("| " + strings.Join(cols, " | ") + " |")
	seps := make([]string, len(cols))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Println("| " + strings.Join(seps, " | ") + " |")
}

func row(cells ...string) {
	fmt.Println("| " + strings.Join(cells, " | ") + " |")
}

func e1() {
	header("E1 — Travel scenario (Fig 2): end-to-end execution",
		"variant", "destination", "services on path", "mean latency", "car rented")
	variants := []struct {
		name, dest, services string
		car                  bool
	}{
		{"domestic, attraction near", "sydney", "DFB, AS, AB", false},
		{"domestic, attraction far", "melbourne", "DFB, AS, AB, CR", true},
		{"international, far", "tokyo", "ITA, AS, AB, CR", true},
		{"international, near", "paris", "ITA, AS, AB", false},
	}
	for _, v := range variants {
		p, comp := deploy(workload.Travel(), func(p *core.Platform) {
			if _, err := workload.RegisterTravelProviders(p.Registry(), service.SimulatedOptions{}); err != nil {
				log.Fatal(err)
			}
		})
		req := workload.TravelRequest("bench", v.dest, true)
		var lastOut map[string]string
		mean, fails := timeRuns(*iterations, func() error {
			out, err := comp.Execute(context.Background(), req)
			lastOut = out
			return err
		})
		if fails > 0 {
			log.Fatalf("E1 %s: %d failures", v.dest, fails)
		}
		gotCar := lastOut["carRef"] != ""
		if gotCar != v.car {
			log.Fatalf("E1 %s: car rented = %v, want %v", v.dest, gotCar, v.car)
		}
		row(v.name, v.dest, v.services, mean.Round(time.Microsecond).String(), fmt.Sprint(gotCar))
		p.Close()
	}
}

func e2() {
	header("E2 — Discovery engine (Fig 1): registry throughput",
		"operation", "registry size", "mean latency", "ops/sec")
	for _, preload := range []int{10, 100, 1000} {
		reg := uddi.NewRegistry()
		ts := httptest.NewServer(uddi.Serve(reg, nil))
		c := &uddi.Client{URL: ts.URL + "/uddi"}
		biz, err := c.SaveBusiness(uddi.BusinessEntity{Name: "LoadCo"})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < preload; i++ {
			if _, err := c.SaveService(uddi.BusinessService{
				BusinessKey: biz.BusinessKey, Name: fmt.Sprintf("svc-%05d", i),
			}); err != nil {
				log.Fatal(err)
			}
		}
		mean, _ := timeRuns(*iterations, func() error {
			_, err := c.FindService(uddi.ServiceQuery{NamePattern: "svc-00001", Qualifier: uddi.MatchPrefix})
			return err
		})
		row("find_service", fmt.Sprint(preload), mean.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(time.Second)/float64(mean)))
		ts.Close()
	}
	// publish
	reg := uddi.NewRegistry()
	ts := httptest.NewServer(uddi.Serve(reg, nil))
	defer ts.Close()
	c := &uddi.Client{URL: ts.URL + "/uddi"}
	biz, _ := c.SaveBusiness(uddi.BusinessEntity{Name: "LoadCo"})
	i := 0
	mean, _ := timeRuns(*iterations, func() error {
		i++
		svc, err := c.SaveService(uddi.BusinessService{
			BusinessKey: biz.BusinessKey, Name: fmt.Sprintf("pub-%06d", i),
		})
		if err != nil {
			return err
		}
		_, err = c.SaveBinding(uddi.BindingTemplate{ServiceKey: svc.ServiceKey, AccessPoint: "http://x"})
		return err
	})
	row("save_service+binding", "growing", mean.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f", float64(time.Second)/float64(mean)))
}

func e3() {
	header("E3 — P2P vs centralized orchestration: mean latency",
		"workload", "k", "P2P", "central", "central/P2P")
	for _, shape := range []string{"chain", "parallel"} {
		for _, k := range []int{2, 4, 8, 16, 32} {
			sc, register := shapeWorkload(shape, k)
			p, comp := deploy(sc, register)
			in := map[string]string{"x": "0"}
			p2p, fails := timeRuns(*iterations, func() error {
				_, err := comp.Execute(context.Background(), in)
				return err
			})
			if fails > 0 {
				log.Fatalf("E3 p2p %s-%d: %d failures", shape, k, fails)
			}
			central, err := comp.NewCentralBaseline("central")
			if err != nil {
				log.Fatal(err)
			}
			cen, fails := timeRuns(*iterations, func() error {
				_, err := central.Execute(context.Background(), in)
				return err
			})
			if fails > 0 {
				log.Fatalf("E3 central %s-%d: %d failures", shape, k, fails)
			}
			row(shape, fmt.Sprint(k),
				p2p.Round(time.Microsecond).String(),
				cen.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2fx", float64(cen)/float64(p2p)))
			central.Close()
			p.Close()
		}
	}
}

func shapeWorkload(shape string, k int) (*statechart.Statechart, func(*core.Platform)) {
	if shape == "chain" {
		return workload.Chain(k), func(p *core.Platform) {
			workload.RegisterChainProviders(p.Registry(), k, service.SimulatedOptions{})
		}
	}
	return workload.Parallel(k), func(p *core.Platform) {
		workload.RegisterParallelProviders(p.Registry(), k, service.SimulatedOptions{})
	}
}

func e4() {
	header("E4 — Community delegation policies (heterogeneous members)",
		"policy", "mean latency", "failure rate", "delegations (Fast/Slow/Flaky/Steady)")
	for _, policyName := range []string{"random", "round-robin", "least-loaded", "cheapest", "qos"} {
		policy, err := community.PolicyByName(policyName, 11)
		if err != nil {
			log.Fatal(err)
		}
		comm := community.New("AccommodationBooking", community.Options{Policy: policy})
		members := []struct {
			brand    string
			latency  time.Duration
			failRate float64
			cost     float64
		}{
			{"Fast", 1 * time.Millisecond, 0, 3},
			{"Slow", 20 * time.Millisecond, 0, 2},
			{"Flaky", 2 * time.Millisecond, 0.3, 1},
			{"Steady", 4 * time.Millisecond, 0, 4},
		}
		for i, m := range members {
			if err := comm.Join(&community.Member{
				Provider: service.NewAccommodationBooking(m.brand, service.SimulatedOptions{
					BaseLatency: m.latency, FailRate: m.failRate, Seed: int64(i + 1),
				}),
				Cost: m.cost,
			}); err != nil {
				log.Fatal(err)
			}
		}
		req := service.Request{
			Service: "AccommodationBooking", Operation: "book",
			Params: map[string]string{"customer": "bench", "dest": "sydney"},
		}
		mean, fails := timeRuns(*iterations, func() error {
			_, err := comm.Invoke(context.Background(), req)
			return err
		})
		var deleg []string
		for _, b := range []string{"Fast", "Slow", "Flaky", "Steady"} {
			deleg = append(deleg, fmt.Sprint(comm.History().Snapshot(b).Executions))
		}
		row(policyName, mean.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", 100*float64(fails)/float64(*iterations)),
			strings.Join(deleg, "/"))
	}
}

func e5() {
	header("E5 — Routing-table generation (deployer precompilation)",
		"basic states", "nesting depth", "tables", "mean generation time")
	for _, n := range []int{4, 16, 64, 256} {
		for _, depth := range []int{1, 3} {
			sc := workload.RandomChart(workload.RandomOptions{
				States: n, MaxDepth: depth, BranchProb: 0.25, ParallelProb: 0.2, Seed: 1234,
			})
			var tables int
			mean, fails := timeRuns(*iterations, func() error {
				plan, err := routing.Generate(sc)
				if err != nil {
					return err
				}
				tables = len(plan.Tables)
				return nil
			})
			if fails > 0 {
				log.Fatalf("E5: generation failed")
			}
			row(fmt.Sprint(len(sc.BasicStates())), fmt.Sprint(depth),
				fmt.Sprint(tables), mean.Round(time.Microsecond).String())
		}
	}
}

func e6() {
	header("E6 — Locate and execute (Fig 3): end-user flow",
		"step", "mean latency")
	reg := uddi.NewRegistry()
	mux := uddi.Serve(reg, nil)
	dfb := service.NewDomesticFlightBooking(service.SimulatedOptions{})
	mux.Handle("/soap/dfb", discovery.ServiceEndpoint(dfb))
	ts := httptest.NewServer(mux)
	defer ts.Close()
	wsdlH, err := discovery.WSDLEndpoint(dfb, ts.URL+"/soap/dfb")
	if err != nil {
		log.Fatal(err)
	}
	mux.Handle("/wsdl/dfb", wsdlH)
	eng := discovery.NewEngine(ts.URL + "/uddi")
	if _, err := eng.Register(discovery.Publication{
		ProviderName: "QF Airlines", ServiceName: "DomesticFlightBooking",
		Endpoint: ts.URL + "/soap/dfb", WSDLURL: ts.URL + "/wsdl/dfb",
	}); err != nil {
		log.Fatal(err)
	}
	locMean, _ := timeRuns(*iterations, func() error {
		_, err := eng.LocateOne("DomesticFlightBooking")
		return err
	})
	row("locate (search + WSDL)", locMean.Round(time.Microsecond).String())
	loc, err := eng.LocateOne("DomesticFlightBooking")
	if err != nil {
		log.Fatal(err)
	}
	params := map[string]string{"customer": "bench", "dest": "sydney"}
	invMean, _ := timeRuns(*iterations, func() error {
		_, err := eng.Invoke(context.Background(), loc, "book", params)
		return err
	})
	row("invoke (SOAP call)", invMean.Round(time.Microsecond).String())
	bothMean, _ := timeRuns(*iterations, func() error {
		l, err := eng.LocateOne("DomesticFlightBooking")
		if err != nil {
			return err
		}
		_, err = eng.Invoke(context.Background(), l, "book", params)
		return err
	})
	row("locate + invoke", bothMean.Round(time.Microsecond).String())
}

func e7() {
	header("E7 — Per-node coordination load, Parallel(k)",
		"k", "P2P busiest coordinator (msgs/exec)", "P2P wrapper (msgs/exec)", "central hub (msgs/exec)")
	for _, k := range []int{4, 8, 16} {
		sc, register := shapeWorkload("parallel", k)
		in := map[string]string{"x": "0"}

		pp, comp := deploy(sc, register)
		n := *iterations
		for i := 0; i < n; i++ {
			if _, err := comp.Execute(context.Background(), in); err != nil {
				log.Fatal(err)
			}
		}
		stats := pp.Network().Stats()
		var worstCoord, wrapper int64
		for addr, ns := range stats.Nodes {
			total := ns.MsgsIn + ns.MsgsOut
			if strings.HasPrefix(addr, "host-") && total > worstCoord {
				worstCoord = total
			}
			if strings.HasPrefix(addr, "wrapper/") {
				wrapper = total
			}
		}
		pp.Close()

		pc, comp2 := deploy(sc, register)
		central, err := comp2.NewCentralBaseline("central")
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := central.Execute(context.Background(), in); err != nil {
				log.Fatal(err)
			}
		}
		hub := pc.Network().Stats().Nodes[central.Addr()]
		central.Close()
		pc.Close()

		row(fmt.Sprint(k),
			fmt.Sprintf("%.1f", float64(worstCoord)/float64(n)),
			fmt.Sprintf("%.1f", float64(wrapper)/float64(n)),
			fmt.Sprintf("%.1f", float64(hub.MsgsIn+hub.MsgsOut)/float64(n)))
	}
}

// e8 measures concurrent-instance scaling: M in-flight executions of
// one composite (open pipe of M workers sharing an execution budget)
// over Parallel(8) and Chain(8), reporting p50 per-execution latency
// and aggregate execs/sec. The Go-bench twin is
// BenchmarkE8ConcurrentInstances; BENCH_concurrency.json records the
// before/after series of the lock-striped engine.
func e8() {
	header("E8 — Concurrent-instance scaling",
		"workload", "in-flight", "p50 latency", "p95 latency", "execs/sec")
	const k = 8
	n := *iterations * 8 // per cell; amortize ramp-up across workers
	for _, shape := range []string{"parallel", "chain"} {
		for _, m := range []int{1, 8, 64, 256} {
			sc, register := shapeWorkload(shape, k)
			p, comp := deploy(sc, register)
			if _, err := comp.Execute(context.Background(), map[string]string{"x": "0"}); err != nil {
				log.Fatal(err)
			}
			var next atomic.Int64
			lat := make([][]time.Duration, m)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < m; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for next.Add(1) <= int64(n) {
						t0 := time.Now()
						if _, err := comp.Execute(context.Background(), map[string]string{"x": "0"}); err != nil {
							log.Fatalf("E8 %s M=%d: %v", shape, m, err)
						}
						lat[w] = append(lat[w], time.Since(t0))
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			var all []time.Duration
			for _, ls := range lat {
				all = append(all, ls...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			row(fmt.Sprintf("%s-%d", shape, k), fmt.Sprint(m),
				all[len(all)/2].Round(time.Microsecond).String(),
				all[len(all)*95/100].Round(time.Microsecond).String(),
				fmt.Sprintf("%.0f", float64(len(all))/elapsed.Seconds()))
			p.Close()
		}
	}
}

// e9 measures availability under message loss: Chain(8) executed with a
// lossy transport (no retransmission, as in the paper's fire-and-forget
// socket exchanges). The peer-to-peer plan needs ~k+1 messages per
// execution while the hub needs 2k, so at equal link loss the hub fails
// roughly twice as often — the quantitative face of §1's availability
// argument. Timed-out executions count as failures.
func e9() {
	header("E9 — Availability under message loss, Chain(8)",
		"drop rate", "P2P completion", "central completion")
	const k = 8
	n := *iterations
	if n > 60 {
		n = 60 // each failed execution costs a timeout; bound the runtime
	}
	for _, drop := range []float64{0, 0.01, 0.03, 0.08} {
		completion := func(central bool) float64 {
			net := transport.NewInMem(transport.InMemOptions{DropRate: drop, Seed: 7})
			defer net.Close()
			p := core.New(core.Options{Network: net})
			defer p.Close()
			workload.RegisterChainProviders(p.Registry(), k, service.SimulatedOptions{})
			sc := workload.Chain(k)
			for i, svc := range sc.Services() {
				h, err := p.AddHost(fmt.Sprintf("host-%d-%s", i, svc))
				if err != nil {
					log.Fatal(err)
				}
				prov, err := p.Registry().Lookup(svc)
				if err != nil {
					log.Fatal(err)
				}
				p.RegisterService(h, prov)
			}
			comp, err := p.Deploy(sc)
			if err != nil {
				log.Fatal(err)
			}
			exec := comp.Execute
			if central {
				hub, err := comp.NewCentralBaseline("central")
				if err != nil {
					log.Fatal(err)
				}
				defer hub.Close()
				exec = hub.Execute
			}
			ok := 0
			for i := 0; i < n; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				if _, err := exec(ctx, map[string]string{"x": "0"}); err == nil {
					ok++
				}
				cancel()
			}
			return float64(ok) / float64(n)
		}
		p2p := completion(false)
		cen := completion(true)
		row(fmt.Sprintf("%.0f%%", drop*100),
			fmt.Sprintf("%.0f%%", p2p*100),
			fmt.Sprintf("%.0f%%", cen*100))
	}
	e9Chaos()
}

// e9Chaos is the chaos sweep behind BENCH_availability.json: Chain(8)
// with a two-member community on one state, under provider death,
// message loss + a flaky member, and a noisy-tenant overload — each with
// the churn layer (failover, per-member breakers, tenant limits) off
// and on.
func e9Chaos() {
	header("E9 — Chaos sweep, Chain(8) with a community-backed state",
		"scenario", "churn layer", "completion", "p95")
	n := *iterations
	if n > 60 {
		n = 60 // each failed execution costs a timeout; bound the runtime
	}
	scenarios := []struct {
		name     string
		drop     float64 // transport message drop rate
		fail     float64 // primary member fail rate
		dead     bool    // kill the primary outright
		overload bool    // flood with a rate-limited tenant
	}{
		{name: "provider death", dead: true},
		{name: "2% loss + flaky member", drop: 0.02, fail: 0.2},
		{name: "noisy-tenant overload", fail: 0.1, overload: true},
	}
	for _, scen := range scenarios {
		for _, churn := range []bool{false, true} {
			completion, p95 := chaosCell(n, scen.drop, scen.fail, scen.dead, scen.overload, churn)
			mode := "off"
			if churn {
				mode = "on"
			}
			p95s := "—"
			if p95 > 0 {
				p95s = p95.Round(time.Microsecond).String()
			}
			row(scen.name, mode, fmt.Sprintf("%.0f%%", completion*100), p95s)
		}
	}
}

// chaosCell runs one cell of the chaos sweep and returns the completion
// rate plus the p95 latency of completed executions (0 if none).
func chaosCell(n int, drop, fail float64, dead, overload, churn bool) (float64, time.Duration) {
	const k = 8
	net := transport.NewInMem(transport.InMemOptions{DropRate: drop, Seed: 7})
	defer net.Close()
	opts := core.Options{Network: net}
	if churn {
		opts.Limits = limits.New(limits.Options{
			PerTenant: map[string]limits.Limit{"noisy": {Rate: 20, Burst: 20}},
		})
	}
	p := core.New(opts)
	defer p.Close()

	primary := service.NewSimulated("ChaosPrimary", service.SimulatedOptions{FailRate: fail, Seed: 11})
	primary.Handle("run", incrementStep)
	backup := service.NewSimulated("ChaosBackup", service.SimulatedOptions{})
	backup.Handle("run", incrementStep)

	sc := workload.Chain(k)
	for i, svc := range sc.Services() {
		h, err := p.AddHost(fmt.Sprintf("chaos-host-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		if svc == "svc4" {
			commOpts := community.Options{Policy: community.NewCheapest()}
			if churn {
				commOpts.Failover = 1
				commOpts.Breaker = &circuit.Options{
					Window: 8, Threshold: 0.5, MinSamples: 4, OpenFor: 50 * time.Millisecond,
				}
			}
			comm := community.New("svc4", commOpts)
			for _, m := range []*community.Member{
				{Provider: primary, Cost: 1}, // preferred while it behaves
				{Provider: backup, Cost: 2},
			} {
				if err := comm.Join(m); err != nil {
					log.Fatal(err)
				}
			}
			p.RegisterService(h, comm)
			continue
		}
		s := service.NewSimulated(svc, service.SimulatedOptions{})
		s.Handle("run", incrementStep)
		p.RegisterService(h, s)
	}
	comp, err := p.Deploy(sc)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	in := map[string]string{"x": "0"}
	warm, cancel := context.WithTimeout(ctx, time.Second)
	comp.Execute(warm, in) // warm the directory; may fail under chaos
	cancel()
	if dead {
		primary.SetDown(true)
	}
	var stop chan struct{}
	if overload {
		stop = make(chan struct{})
		defer close(stop)
		for w := 0; w < 4; w++ {
			go func() {
				noisy := map[string]string{"x": "0", engine.TenantVar: "noisy"}
				for {
					select {
					case <-stop:
						return
					default:
					}
					c, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
					if _, err := comp.Execute(c, noisy); err != nil {
						time.Sleep(time.Millisecond) // shed/fault: back off
					}
					cancel()
				}
			}()
		}
	}
	ok := 0
	var lats []time.Duration
	for i := 0; i < n; i++ {
		c, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
		t0 := time.Now()
		if _, err := comp.Execute(c, in); err == nil {
			ok++
			lats = append(lats, time.Since(t0))
		}
		cancel()
	}
	var p95 time.Duration
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p95 = lats[len(lats)*95/100]
	}
	return float64(ok) / float64(n), p95
}

// incrementStep is the chain workload's step function: x -> x+1.
func incrementStep(_ context.Context, params map[string]string) (map[string]string, error) {
	x, err := strconv.Atoi(params["x"])
	if err != nil {
		return nil, fmt.Errorf("bad x %q: %w", params["x"], err)
	}
	return map[string]string{"x": strconv.Itoa(x + 1)}, nil
}

// e10AddrRE extracts the coordination and admin addresses from hostd's
// startup log line.
var e10AddrRE = regexp.MustCompile(`coordination on (\S+), admin on http://(\S+), services`)

// e10Daemon spawns one hostd replica process on ephemeral ports and
// waits for it to announce its listen addresses, returning the process
// handle and its admin URL.
func e10Daemon(bin string) (*exec.Cmd, string) {
	cmd := exec.Command(bin,
		"-services", "inc:svc1,inc:svc2,inc:svc3,inc:svc4",
		"-latency", "8ms",
		"-svc-concurrency", "2")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatalf("E10: start hostd: %v", err)
	}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if m := e10AddrRE.FindStringSubmatch(sc.Text()); m != nil {
			// Keep draining stderr so the daemon never blocks on a full pipe.
			go io.Copy(io.Discard, stderr)
			return cmd, "http://" + m[2]
		}
	}
	log.Fatal("E10: hostd exited before announcing its addresses")
	return nil, ""
}

// e10Cell runs one table cell: spawn `replicas` hostd processes each
// hosting every Chain(4) service, deploy the chain onto all of them,
// and hammer it from a local wrapper. Returns throughput, latency
// percentiles, and the wrapper's transport messages per execution
// (which pins the routing-never-RPCs invariant).
func e10Cell(bin string, replicas, workers, n int) (execsPerSec float64, p50, p95 time.Duration, msgsPerExec float64) {
	sc4 := workload.Chain(4)

	var daemons []*exec.Cmd
	defer func() {
		for _, d := range daemons {
			d.Process.Kill()
			d.Wait()
		}
	}()
	var installers []*hostapi.RemoteInstaller
	for r := 0; r < replicas; r++ {
		cmd, adminURL := e10Daemon(bin)
		daemons = append(daemons, cmd)
		ri, err := hostapi.NewRemoteInstaller(adminURL)
		if err != nil {
			log.Fatalf("E10: admin dial: %v", err)
		}
		installers = append(installers, ri)
	}

	pl := deployer.Placement{}
	for _, svc := range sc4.Services() {
		for _, ri := range installers {
			pl[svc] = append(pl[svc], ri)
		}
	}
	dep, err := deployer.Deploy(sc4, pl)
	if err != nil {
		log.Fatalf("E10: deploy across %d replicas: %v", replicas, err)
	}

	// The wrapper is its own "process": own TCP transport, own directory.
	wnet := transport.NewTCP()
	defer wnet.Close()
	wdir := engine.NewDirectory()
	for state, addrs := range dep.Hosts {
		wdir.SetReplicas(sc4.Name, state, addrs)
	}
	w, err := engine.NewWrapper(wnet, "127.0.0.1:0", wdir, dep.Plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	peers := map[string][]string{message.WrapperID: {w.Addr()}}
	for state, addrs := range dep.Hosts {
		peers[state] = addrs
	}
	for _, ri := range installers {
		if err := ri.Client.PushReplicaDirectory(sc4.Name, peers); err != nil {
			log.Fatalf("E10: push replica directory: %v", err)
		}
	}

	warmCtx, warmCancel := context.WithTimeout(context.Background(), 30*time.Second)
	if _, err := w.Execute(warmCtx, map[string]string{"x": "0"}); err != nil {
		log.Fatalf("E10: warmup (R=%d): %v", replicas, err)
	}
	warmCancel()

	before := wnet.Stats().Total()
	var next atomic.Int64
	lat := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(n) {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				t0 := time.Now()
				out, err := w.Execute(ctx, map[string]string{
					"x":              "0",
					engine.TenantVar: fmt.Sprintf("tenant-%d", i%7),
				})
				cancel()
				if err != nil || out["x"] != "4" {
					log.Fatalf("E10: exec (R=%d): out=%v err=%v", replicas, out, err)
				}
				lat[wi] = append(lat[wi], time.Since(t0))
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	after := wnet.Stats().Total()

	// Routing-never-RPCs pin: the wrapper exchanges EXACTLY one start
	// message out and one completion message in per execution, no matter
	// how many replicas each state has. Any replica-resolution chatter
	// would show up here.
	dOut, dIn := after.MsgsOut-before.MsgsOut, after.MsgsIn-before.MsgsIn
	if dOut != int64(n) || dIn != int64(n) {
		log.Fatalf("E10 (R=%d): wrapper transport saw %d msgs out / %d in for %d execs; want exactly %d/%d — replica routing must stay RPC-free",
			replicas, dOut, dIn, n, n, n)
	}

	var all []time.Duration
	for _, ls := range lat {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return float64(len(all)) / elapsed.Seconds(),
		all[len(all)/2],
		all[len(all)*95/100],
		float64(dOut+dIn) / float64(n)
}

// e10 measures horizontal scale-out across real hostd processes.
// Each replica hosts ALL of Chain(4)'s services with provider capacity
// capped at 2 concurrent invocations x 8ms latency, so one replica
// saturates near 250 execs/sec regardless of CPU — the regime where
// adding replicas (not cores) is what buys throughput. Deterministic
// tenant-aware routing spreads instances over the replica set with
// zero extra messages, verified by a hard stats assertion per cell.
func e10() {
	header("E10 — Horizontal scale-out: Chain(4) over replicated hostd processes",
		"replicas", "workers", "execs", "p50 latency", "p95 latency", "execs/sec", "scaling", "wrapper msgs/exec")
	tmp, err := os.MkdirTemp("", "selfserv-e10-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "hostd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/hostd").CombinedOutput(); err != nil {
		log.Fatalf("E10: build hostd: %v\n%s", err, out)
	}

	n := *iterations * 4
	const workers = 48
	var base float64
	for _, replicas := range []int{1, 2, 4} {
		eps, p50, p95, mpe := e10Cell(bin, replicas, workers, n)
		scaling := "1.00x (base)"
		if base == 0 {
			base = eps
		} else {
			scaling = fmt.Sprintf("%.2fx", eps/base)
		}
		row(strconv.Itoa(replicas), strconv.Itoa(workers), strconv.Itoa(n),
			p50.Round(100*time.Microsecond).String(), p95.Round(100*time.Microsecond).String(),
			fmt.Sprintf("%.0f", eps), scaling, fmt.Sprintf("%.0f", mpe))
	}
}
